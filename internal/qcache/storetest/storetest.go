// Package storetest is the conformance suite for qcache.Store
// implementations: one shared set of get/put/evict/TTL-expiry/Len
// invariant checks that every backend — the in-process sharded LRU and
// the distributed peer store alike — must pass, so a Cache can swap
// backends without behavioral drift. Run it from a backend's own tests:
//
//	storetest.Run(t, func(t *testing.T) qcache.Store {
//		return qcache.NewLRUStore(0, 0, nil)
//	})
//
// The suite stores string values; a backend that moves values through a
// codec (like the peer store) must be built with one that round-trips
// strings losslessly.
package storetest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"starts/internal/qcache"
)

// Run exercises every Store invariant against fresh stores built by mk.
// Each subtest gets its own store, so backends with shared external
// state (a peer cluster) should return stores over a fresh key space or
// reset state in mk.
func Run(t *testing.T, mk func(t *testing.T) qcache.Store) {
	t.Helper()
	// Anchor at the real clock: distributed backends compare entry
	// freshness against their own (real) clocks, so synthetic epochs
	// would read as long-dead entries.
	now := time.Now()
	live := func(v string) qcache.Entry {
		return qcache.Entry{Val: v, Expires: now.Add(time.Hour), StaleUntil: now.Add(2 * time.Hour)}
	}

	t.Run("get-missing", func(t *testing.T) {
		s := mk(t)
		if _, ok := s.Get("storetest-absent", now); ok {
			t.Fatal("Get of an absent key reported ok")
		}
	})

	t.Run("put-get-roundtrip", func(t *testing.T) {
		s := mk(t)
		s.Put("storetest-k1", live("v1"))
		e, ok := s.Get("storetest-k1", now)
		if !ok {
			t.Fatal("Get after Put missed")
		}
		if e.Val != "v1" {
			t.Fatalf("Get returned %v, want v1", e.Val)
		}
		if !e.Expires.Equal(now.Add(time.Hour)) || !e.StaleUntil.Equal(now.Add(2*time.Hour)) {
			t.Fatalf("freshness bounds not preserved: expires %v staleUntil %v", e.Expires, e.StaleUntil)
		}
	})

	t.Run("overwrite", func(t *testing.T) {
		s := mk(t)
		s.Put("storetest-k2", live("old"))
		s.Put("storetest-k2", live("new"))
		e, ok := s.Get("storetest-k2", now)
		if !ok || e.Val != "new" {
			t.Fatalf("Get after overwrite returned %v/%v, want new/true", e.Val, ok)
		}
		if n := s.Len(); n != 1 {
			t.Fatalf("Len after overwrite = %d, want 1", n)
		}
	})

	t.Run("stale-window-entry-served", func(t *testing.T) {
		s := mk(t)
		// Past Expires but within StaleUntil: the STORE must still return
		// it — serving it stale (or not) is the Cache's decision.
		s.Put("storetest-k3", qcache.Entry{
			Val: "stale", Expires: now.Add(-time.Minute), StaleUntil: now.Add(time.Hour),
		})
		e, ok := s.Get("storetest-k3", now)
		if !ok || e.Val != "stale" {
			t.Fatalf("stale-window entry: got %v/%v, want stale/true", e.Val, ok)
		}
	})

	t.Run("dead-entry-absent", func(t *testing.T) {
		s := mk(t)
		s.Put("storetest-k4", qcache.Entry{
			Val: "dead", Expires: now.Add(-2 * time.Hour), StaleUntil: now.Add(-time.Hour),
		})
		if _, ok := s.Get("storetest-k4", now); ok {
			t.Fatal("entry past StaleUntil reported present")
		}
	})

	t.Run("ttl-expiry-by-clock", func(t *testing.T) {
		s := mk(t)
		s.Put("storetest-k5", qcache.Entry{
			Val: "short", Expires: now.Add(50 * time.Millisecond), StaleUntil: now.Add(100 * time.Millisecond),
		})
		if e, ok := s.Get("storetest-k5", now); !ok || e.Val != "short" {
			t.Fatalf("fresh short-TTL entry: got %v/%v", e, ok)
		}
		// The same entry read with a later clock is past its stale window
		// and must be absent.
		if _, ok := s.Get("storetest-k5", now.Add(time.Second)); ok {
			t.Fatal("entry read past its StaleUntil reported present")
		}
	})

	t.Run("evict", func(t *testing.T) {
		s := mk(t)
		s.Put("storetest-k6", live("v"))
		s.Evict("storetest-k6")
		if _, ok := s.Get("storetest-k6", now); ok {
			t.Fatal("Get after Evict reported present")
		}
		// Evicting an absent key must be a harmless no-op.
		s.Evict("storetest-never-existed")
	})

	t.Run("len", func(t *testing.T) {
		s := mk(t)
		if n := s.Len(); n != 0 {
			t.Fatalf("fresh store Len = %d, want 0", n)
		}
		const total = 20
		for i := 0; i < total; i++ {
			s.Put(fmt.Sprintf("storetest-len-%d", i), live(fmt.Sprintf("v%d", i)))
		}
		if n := s.Len(); n != total {
			t.Fatalf("Len after %d puts = %d", total, n)
		}
		for i := 0; i < total/2; i++ {
			s.Evict(fmt.Sprintf("storetest-len-%d", i))
		}
		if n := s.Len(); n != total/2 {
			t.Fatalf("Len after evicting half = %d, want %d", n, total/2)
		}
	})

	t.Run("concurrent", func(t *testing.T) {
		s := mk(t)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					key := fmt.Sprintf("storetest-conc-%d", i%10)
					s.Put(key, live(fmt.Sprintf("g%d-i%d", g, i)))
					if e, ok := s.Get(key, now); ok {
						if _, isString := e.Val.(string); !isString {
							t.Errorf("concurrent Get returned %T, want string", e.Val)
							return
						}
					}
					if i%7 == 0 {
						s.Evict(key)
					}
				}
			}(g)
		}
		wg.Wait()
	})
}
