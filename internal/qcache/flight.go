package qcache

import (
	"context"
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent calls for the same key: the first
// caller (the leader) runs the function, later callers wait for the
// leader's result instead of repeating the work. Unlike the classic
// singleflight, waiters honor their own context, so a cancelled joiner
// returns promptly while the leader's call keeps running.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*call
}

// call is one in-flight execution. val and err are written before done is
// closed, so readers that waited on done observe them race-free.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// flightPanic carries a recovered panic value out of run so Do can
// rethrow it on the leader after the call is unregistered.
type flightPanic struct {
	val any
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*call{}}
}

// Do executes fn once per key among concurrent callers. The leader runs
// fn on its own goroutine and reports shared=false; joiners wait for the
// leader (or their context) and report shared=true. onJoin, when non-nil,
// fires synchronously the moment a caller joins an existing flight —
// before it blocks — so coalescing is observable while the leader is
// still running.
//
// A panicking fn is rethrown to the leader only — after the call is
// unregistered and done is closed, so joiners receive it as the call's
// error and the key is never wedged.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (any, error), onJoin func()) (any, bool, error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		if onJoin != nil {
			onJoin()
		}
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	if p := g.run(key, c, fn); p != nil {
		panic(p.val)
	}
	return c.val, false, c.err
}

// run executes fn into c and then — panic or not — removes the call
// from the map and closes done, so waiters can never wedge on a key
// whose leader died. A panic is recorded as the call's error and handed
// back for the caller to rethrow (Do, on the leader) or swallow (Solo,
// on a detached refresh goroutine).
func (g *flightGroup) run(key string, c *call, fn func() (any, error)) (p *flightPanic) {
	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	defer func() {
		if r := recover(); r != nil {
			p = &flightPanic{val: r}
			c.err = fmt.Errorf("qcache: flight for key %q: fill panicked: %v", key, r)
		}
	}()
	c.val, c.err = fn()
	return nil
}

// Solo runs fn under key on a new goroutine unless a call for key is
// already in flight, in which case it does nothing. It backs
// stale-while-revalidate refreshes: many stale serves trigger at most one
// refresh, and a concurrent Do for the same key joins it. A panicking fn
// is recorded as the call's error and swallowed — crashing the process
// from a background refresh is worse than a lost refresh.
func (g *flightGroup) Solo(key string, fn func() (any, error)) {
	g.mu.Lock()
	if _, inFlight := g.calls[key]; inFlight {
		g.mu.Unlock()
		return
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		_ = g.run(key, c, fn)
	}()
}
