package qcache

import (
	"context"
	"sync"
	"testing"
	"time"

	"starts/internal/obs"
)

// mapStore is a deliberately naive Store: a flat locked map that never
// prunes. It stands in for an external backend to prove the Store seam —
// coalescing, stale serving and the gate must all keep working in front
// of it, and the cache must evict dead entries it leaves behind.
type mapStore struct {
	mu   sync.Mutex
	m    map[string]Entry
	puts int
}

func newMapStore() *mapStore { return &mapStore{m: map[string]Entry{}} }

func (s *mapStore) Get(key string, _ time.Time) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	return e, ok
}

func (s *mapStore) Put(key string, e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = e
	s.puts++
}

func (s *mapStore) Evict(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
}

func (s *mapStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func TestCustomStoreServesFullPolicy(t *testing.T) {
	clk := newFakeClock()
	st := newMapStore()
	c := New(Config{TTL: time.Minute, StaleFor: time.Hour, Store: st, Now: clk.now})
	ctx := context.Background()

	if _, out, err := c.Do(ctx, "k", fillConst("v1")); err != nil || out != Filled {
		t.Fatalf("first Do = %v, %v; want miss", out, err)
	}
	if v, out, _ := c.Do(ctx, "k", fillConst("v2")); out != Hit || v != "v1" {
		t.Fatalf("second Do = %v, %v; want cached v1, hit", v, out)
	}
	if c.Len() != 1 || st.Len() != 1 {
		t.Fatalf("Len = %d/%d, want 1/1", c.Len(), st.Len())
	}

	// Expired within the stale window: served stale from the custom store.
	clk.advance(2 * time.Minute)
	if v, out, _ := c.Do(ctx, "k", fillConst("v2")); out != Stale || v != "v1" {
		t.Fatalf("post-TTL Do = %v, %v; want stale v1", v, out)
	}
	// Wait for the background refresh to land so its flight cannot
	// coalesce the refill below.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if v, ok := c.Get("k"); ok && v == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale-triggered refresh never landed in the custom store")
		}
		time.Sleep(time.Millisecond)
	}

	// Dead past the stale window: the cache evicts from a store that does
	// not prune for itself, then refills.
	clk.advance(2 * time.Hour)
	if v, out, _ := c.Do(ctx, "k", fillConst("v3")); out != Filled || v != "v3" {
		t.Fatalf("post-stale Do = %v, %v; want refilled v3", v, out)
	}
	if st.Len() != 1 {
		t.Fatalf("store Len = %d after dead-entry eviction + refill, want 1", st.Len())
	}
}

func TestLRUStoreDirect(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewLRUStore(2, 1, reg)
	now := time.Unix(1000, 0)
	live := Entry{Val: 1, Expires: now.Add(time.Hour), StaleUntil: now.Add(2 * time.Hour)}

	st.Put("a", live)
	st.Put("b", live)
	if _, ok := st.Get("a", now); !ok {
		t.Fatal("a missing before capacity reached")
	}
	// a was just touched, so inserting c evicts b (the LRU tail).
	st.Put("c", live)
	if _, ok := st.Get("b", now); ok {
		t.Fatal("b survived past capacity; want LRU eviction")
	}
	if _, ok := st.Get("a", now); !ok {
		t.Fatal("recently-touched a was evicted instead of LRU b")
	}
	if got := st.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := reg.Counter(obs.MQCacheEvictions).Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := reg.Gauge(obs.MQCacheEntries).Value(); got != 2 {
		t.Fatalf("entries gauge = %d, want 2", got)
	}

	// Dead entries are pruned on Get.
	dead := Entry{Val: 2, Expires: now.Add(-2 * time.Hour), StaleUntil: now.Add(-time.Hour)}
	st.Put("d", dead)
	if _, ok := st.Get("d", now); ok {
		t.Fatal("dead entry served from LRU store")
	}
}

// Entry.dead is the shared liveness rule stores may use for pruning.
func TestEntryDead(t *testing.T) {
	now := time.Unix(1000, 0)
	e := Entry{Expires: now.Add(time.Minute), StaleUntil: now.Add(time.Hour)}
	if e.dead(now) {
		t.Fatal("fresh entry reported dead")
	}
	if e.dead(now.Add(30 * time.Minute)) {
		t.Fatal("stale-but-servable entry reported dead")
	}
	if !e.dead(now.Add(2 * time.Hour)) {
		t.Fatal("entry past StaleUntil reported alive")
	}
}
