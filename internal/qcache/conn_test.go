package qcache

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// stubConn is a minimal SourceConn whose freshness metadata and query
// count the tests control.
type stubConn struct {
	id      string
	md      meta.SourceMeta
	queries atomic.Int64
}

func (s *stubConn) SourceID() string { return s.id }

func (s *stubConn) Metadata(context.Context) (*meta.SourceMeta, error) {
	md := s.md
	return &md, nil
}

func (s *stubConn) Summary(context.Context) (*meta.ContentSummary, error) {
	return &meta.ContentSummary{}, nil
}

func (s *stubConn) Sample(context.Context) ([]*source.SampleEntry, error) { return nil, nil }

func (s *stubConn) Query(context.Context, *query.Query) (*result.Results, error) {
	s.queries.Add(1)
	return &result.Results{}, nil
}

func connQuery(t *testing.T) *query.Query {
	t.Helper()
	r, err := query.ParseRanking(`list((body-of-text "database"))`)
	if err != nil {
		t.Fatal(err)
	}
	q := query.New()
	q.Ranking = r
	return q
}

// The caching Conn derives each entry's lifetime from the source's own
// DateExpires, not the cache's blanket TTL: with a one-hour Config.TTL
// but a source expiring in ten minutes, the entry dies at ten minutes.
func TestConnEntryTTLFollowsSourceExpiry(t *testing.T) {
	clk := newFakeClock()
	cache := New(Config{TTL: time.Hour, StaleFor: -1, Now: clk.now})
	inner := &stubConn{id: "s1"}
	inner.md.DateExpires = clk.now().Add(10 * time.Minute)
	conn := WrapConn(inner, cache)
	ctx := context.Background()
	q := connQuery(t)

	// Harvest first, as core does: the pass-through records the dates.
	if _, err := conn.Metadata(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := inner.queries.Load(); got != 1 {
		t.Fatalf("source queried %d times, want 1 (second serve cached)", got)
	}

	// Past the source's expiry but far inside Config.TTL: must refill.
	clk.advance(11 * time.Minute)
	if _, err := conn.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := inner.queries.Load(); got != 2 {
		t.Fatalf("source queried %d times after its DateExpires passed, want 2", got)
	}
}

// Before any harvest — or when the source declares no dates — entries
// fall back to the cache's Config.TTL.
func TestConnEntryTTLFallsBackWithoutMetadata(t *testing.T) {
	clk := newFakeClock()
	cache := New(Config{TTL: time.Hour, StaleFor: -1, Now: clk.now})
	inner := &stubConn{id: "s1"}
	conn := WrapConn(inner, cache)
	ctx := context.Background()
	q := connQuery(t)

	if _, err := conn.Query(ctx, q); err != nil { // no Metadata call yet
		t.Fatal(err)
	}
	clk.advance(30 * time.Minute) // inside Config.TTL
	if _, err := conn.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := inner.queries.Load(); got != 1 {
		t.Fatalf("source queried %d times inside the fallback TTL, want 1", got)
	}
}
