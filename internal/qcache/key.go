// Package qcache is the metasearcher's query-result cache: a sharded
// LRU+TTL store keyed on a canonical query fingerprint, with singleflight
// coalescing (N concurrent identical queries cost one fan-out),
// stale-while-revalidate (an expired entry is served immediately while a
// background refresh runs) and a bounded admission gate that sheds load
// with a typed error instead of queueing without limit.
//
// Under real traffic query distributions are heavily skewed; a
// metasearcher that re-fans-out to every source for every repeated query
// wastes the scarce resource the STARTS paper centers on — source round
// trips. qcache shields the sources the way ZBroker caches at the broker.
//
// qcache imports only the leaf object packages (query, result, meta,
// source) and obs; like obs it declares its own structural copy of the
// Conn interface, so core, client wrappers and servers all import qcache
// and the dependency keeps pointing outward.
package qcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"starts/internal/attr"
	"starts/internal/query"
)

// Keyer derives cache keys from queries. Scope namespaces the key space:
// the metasearcher mixes in everything outside the query that shapes the
// answer (selector, merger, source cap, registered source set); a
// per-source conn cache mixes in the source ID. Two Keyers with distinct
// scopes never collide.
type Keyer struct {
	Scope string
}

// Key returns the canonical fingerprint of q under the keyer's scope:
// a hex digest of the scope plus Canonical(q).
func (k Keyer) Key(q *query.Query) string {
	sum := sha256.Sum256([]byte(k.Scope + "\x00" + Canonical(q)))
	return hex.EncodeToString(sum[:16])
}

// Canonical renders a query in a canonical form in which semantically
// identical queries print identically:
//
//   - commutative and/or filter and ranking operands are flattened across
//     associativity and sorted, so `a and b` and `b and a` (and
//     `(a and b) and c` vs `a and (b and c)`) share a fingerprint —
//     and-not and prox stay order-sensitive;
//   - term fields, weights and comparison modifiers are normalized to
//     their documented defaults (unset field = any, weight 0 = 1), and
//     modifier order within a term is sorted;
//   - the Sources list is sorted (same-resource duplicate elimination is
//     set-shaped);
//   - the result specification is included with its effective defaults
//     applied, so a query relying on a default and one spelling it out
//     share an entry.
func Canonical(q *query.Query) string {
	var b strings.Builder
	b.WriteString("f=")
	b.WriteString(canonExpr(q.Filter))
	b.WriteString(";r=")
	b.WriteString(canonExpr(q.Ranking))
	fmt.Fprintf(&b, ";stop=%t;set=%s;lang=%s",
		q.DropStopWords, strings.ToLower(string(q.DefaultAttrSet)), q.DefaultLanguage.String())
	srcs := append([]string(nil), q.Sources...)
	sort.Strings(srcs)
	b.WriteString(";srcs=")
	b.WriteString(strings.Join(srcs, ","))
	b.WriteString(";ans=")
	for i, f := range q.EffectiveAnswerFields() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(f))
	}
	b.WriteString(";sort=")
	for i, s := range q.EffectiveSort() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String())
	}
	fmt.Fprintf(&b, ";min=%g;max=%d", q.MinScore, q.EffectiveMaxResults())
	return b.String()
}

// canonExpr renders one expression tree canonically. Chains of the same
// commutative operator (and, or) are flattened and their operands sorted;
// everything else keeps its structure.
func canonExpr(e query.Expr) string {
	switch n := e.(type) {
	case nil:
		return ""
	case *query.TermExpr:
		return canonTerm(n.Term)
	case *query.Bin:
		if n.Op == query.OpAnd || n.Op == query.OpOr {
			ops := flatten(n.Op, n, nil)
			sort.Strings(ops)
			return "(" + string(n.Op) + " " + strings.Join(ops, " ") + ")"
		}
		return "(" + string(n.Op) + " " + canonExpr(n.L) + " " + canonExpr(n.R) + ")"
	case *query.Prox:
		return fmt.Sprintf("(prox[%d,%t] %s %s)", n.Dist, n.Ordered, canonTerm(n.L.Term), canonTerm(n.R.Term))
	case *query.List:
		parts := make([]string, len(n.Items))
		for i, it := range n.Items {
			parts[i] = canonExpr(it)
		}
		return "list(" + strings.Join(parts, " ") + ")"
	default:
		// Unknown node types fall back to their printed form.
		return e.String()
	}
}

// flatten collects the canonical operand strings of a same-operator
// chain: (a and (b and c)) and ((a and b) and c) both yield [a b c].
func flatten(op query.Op, e query.Expr, dst []string) []string {
	if b, ok := e.(*query.Bin); ok && b.Op == op {
		return flatten(op, b.R, flatten(op, b.L, dst))
	}
	return append(dst, canonExpr(e))
}

// canonTerm renders a term with defaults applied (unset field = any,
// weight 0 = 1, implicit "=" comparison) and modifiers sorted, so
// spelled-out defaults and omitted ones fingerprint identically.
func canonTerm(t query.Term) string {
	mods := make([]string, 0, len(t.Mods))
	hasCmp := false
	for _, m := range t.Mods {
		if m.IsComparison() {
			hasCmp = true
		}
		mods = append(mods, m.String())
	}
	if !hasCmp {
		mods = append(mods, attr.ModEQ.String())
	}
	sort.Strings(mods)
	return "(" + string(t.EffectiveField()) + " " + strings.Join(mods, " ") +
		" " + t.Value.String() + " " + strconv.FormatFloat(t.EffectiveWeight(), 'g', -1, 64) + ")"
}
