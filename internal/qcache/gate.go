package qcache

import (
	"context"
	"errors"
	"fmt"
	"time"

	"starts/internal/obs"
)

// ErrShed is returned when the admission gate could not grant a slot
// within its queue timeout. Callers detect it with errors.Is and turn it
// into a fast 503 (servers) or an immediate typed failure (clients)
// instead of queueing until collapse.
var ErrShed = errors.New("qcache: shed: too many queries in flight")

// Gate is a bounded admission gate: a semaphore of maxInflight slots with
// a queue timeout. A full gate makes overload degrade to fast, typed
// rejections — the caller gets an ErrShed within the timeout — rather
// than unbounded queueing. A nil *Gate admits everything.
type Gate struct {
	sem     chan struct{}
	timeout time.Duration
	shed    *obs.Counter
	queued  *obs.Gauge
}

// DefaultQueueTimeout bounds how long an admission waits for a slot when
// the gate's configured timeout is zero.
const DefaultQueueTimeout = 250 * time.Millisecond

// NewGate returns a gate admitting at most maxInflight concurrent
// holders, each waiting at most queueTimeout (DefaultQueueTimeout if
// zero) for a slot. maxInflight <= 0 returns a nil gate, which admits
// everything. Sheds count into reg as obs.MQCacheShed.
func NewGate(maxInflight int, queueTimeout time.Duration, reg *obs.Registry) *Gate {
	if maxInflight <= 0 {
		return nil
	}
	if queueTimeout <= 0 {
		queueTimeout = DefaultQueueTimeout
	}
	return &Gate{
		sem:     make(chan struct{}, maxInflight),
		timeout: queueTimeout,
		shed:    reg.Counter(obs.MQCacheShed),
		queued:  reg.Gauge(obs.MQCacheInflight),
	}
}

// Acquire obtains a slot, blocking up to the queue timeout. It returns a
// release function on success; on a full gate it returns ErrShed (wrapped
// with the waited duration) within the timeout, and on context
// cancellation it returns ctx.Err(). A nil gate admits immediately.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	// A dead request must never hold a fill slot: check the context
	// before trying for a slot, and re-check after winning one — select
	// picks among ready cases at random, so both the fast path and the
	// queued path can otherwise grant a slot to an already-cancelled
	// context and burn fill capacity under exactly the overload the gate
	// exists to survive.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case g.sem <- struct{}{}:
		return g.granted(ctx)
	default:
	}
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		return g.granted(ctx)
	case <-timer.C:
		g.shed.Inc()
		return nil, fmt.Errorf("%w (waited %v)", ErrShed, g.timeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// granted finalizes a won slot, handing it straight back if the context
// ended while the select was deciding.
func (g *Gate) granted(ctx context.Context) (func(), error) {
	if err := ctx.Err(); err != nil {
		<-g.sem
		return nil, err
	}
	g.queued.Add(1)
	return g.release, nil
}

func (g *Gate) release() {
	g.queued.Add(-1)
	<-g.sem
}
