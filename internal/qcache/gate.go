package qcache

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"starts/internal/obs"
)

// ErrShed is returned when the admission gate refused a slot — either
// the queue timeout ran out, or CoDel-style adaptive shedding decided
// the gate has been congested past its sojourn target for too long.
// Callers detect it with errors.Is and turn it into a fast 503
// (servers) or an immediate typed failure (clients) instead of queueing
// until collapse.
var ErrShed = errors.New("qcache: shed: too many queries in flight")

// Gate is a bounded admission gate: a semaphore of maxInflight slots
// with a queue timeout, optionally sharpened by CoDel-style adaptive
// shedding. The fixed timeout alone sheds a fixed amount — whoever
// waits longest loses, however bad the congestion is. With a sojourn
// Target set, the gate watches how long admissions actually wait for a
// slot; once the wait has stayed above target for a full interval it
// enters a dropping state that sheds admissions at entry, at a rate that
// accelerates (interval/√n, CoDel's control law) until the wait falls
// back under target. Overload then degrades to early, cheap rejections
// at the door instead of every caller burning its timeout in line. A
// nil *Gate admits everything.
type Gate struct {
	sem     chan struct{}
	timeout time.Duration
	target  time.Duration
	ival    time.Duration
	now     func() time.Time
	shed    *obs.Counter
	queued  *obs.Gauge

	// mu guards the CoDel controller state.
	mu         sync.Mutex
	firstAbove time.Time // when sojourn first stayed above target (zero: not above)
	dropping   bool
	dropNext   time.Time
	dropCount  int
	sojourn    time.Duration // EWMA of observed waits, feeds RetryAfter
}

// Default admission-gate tuning, used when GateConfig leaves the fields
// zero.
const (
	// DefaultQueueTimeout bounds how long an admission waits for a slot
	// when the gate's configured timeout is zero.
	DefaultQueueTimeout = 250 * time.Millisecond
	// DefaultAdmissionInterval is the CoDel interval: how long the
	// observed wait must stay above target before dropping starts, and
	// the base spacing of drops once it does.
	DefaultAdmissionInterval = 100 * time.Millisecond
)

// GateConfig configures a Gate.
type GateConfig struct {
	// MaxInflight bounds concurrent slot holders; <= 0 builds a nil gate
	// that admits everything.
	MaxInflight int
	// QueueTimeout is the hard bound on one admission's wait for a slot
	// (default DefaultQueueTimeout).
	QueueTimeout time.Duration
	// Target is the sojourn target: the slot wait the gate tries to keep
	// admissions under. 0 disables adaptive shedding, leaving the plain
	// timeout gate.
	Target time.Duration
	// Interval is the CoDel interval (default
	// DefaultAdmissionInterval).
	Interval time.Duration
	// Metrics receives sheds (obs.MQCacheShed) and the inflight gauge
	// (obs.MQCacheInflight); nil records nothing.
	Metrics *obs.Registry
	// Now overrides the clock for deterministic tests.
	Now func() time.Time
}

// NewGate returns a plain timeout gate — NewGateConfig without adaptive
// shedding — admitting at most maxInflight concurrent holders, each
// waiting at most queueTimeout for a slot. maxInflight <= 0 returns a
// nil gate, which admits everything.
func NewGate(maxInflight int, queueTimeout time.Duration, reg *obs.Registry) *Gate {
	return NewGateConfig(GateConfig{
		MaxInflight:  maxInflight,
		QueueTimeout: queueTimeout,
		Metrics:      reg,
	})
}

// NewGateConfig returns a gate for the config; see GateConfig for the
// zero-value defaults. MaxInflight <= 0 returns a nil gate, which admits
// everything.
func NewGateConfig(cfg GateConfig) *Gate {
	if cfg.MaxInflight <= 0 {
		return nil
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultAdmissionInterval
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Gate{
		sem:     make(chan struct{}, cfg.MaxInflight),
		timeout: cfg.QueueTimeout,
		target:  cfg.Target,
		ival:    cfg.Interval,
		now:     cfg.Now,
		shed:    cfg.Metrics.Counter(obs.MQCacheShed),
		queued:  cfg.Metrics.Gauge(obs.MQCacheInflight),
	}
}

// Acquire obtains a slot, blocking up to the queue timeout. It returns a
// release function on success; on a full gate it returns ErrShed
// (wrapped with the waited duration) within the timeout, and on context
// cancellation it returns ctx.Err(). With a sojourn target configured, a
// gate in the dropping state may also shed at entry, before any wait. A
// nil gate admits immediately.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	// A dead request must never hold a fill slot: check the context
	// before trying for a slot, and re-check after winning one — select
	// picks among ready cases at random, so both the fast path and the
	// queued path can otherwise grant a slot to an already-cancelled
	// context and burn fill capacity under exactly the overload the gate
	// exists to survive.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if g.dropAtEntry() {
		g.shed.Inc()
		return nil, fmt.Errorf("%w (admission tightened: wait above %v)", ErrShed, g.target)
	}
	start := g.now()
	select {
	case g.sem <- struct{}{}:
		g.observe(0)
		return g.granted(ctx)
	default:
	}
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		g.observe(g.now().Sub(start))
		return g.granted(ctx)
	case <-timer.C:
		g.observe(g.timeout)
		g.shed.Inc()
		return nil, fmt.Errorf("%w (waited %v)", ErrShed, g.timeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// dropAtEntry implements the dropping state's entry check: once the
// observed wait has stayed above target for an interval, admissions are
// shed at the door, spaced interval/√n apart so the shed rate ramps up
// the longer congestion persists.
func (g *Gate) dropAtEntry() bool {
	if g.target <= 0 {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.dropping {
		return false
	}
	now := g.now()
	if now.Before(g.dropNext) {
		return false
	}
	g.dropCount++
	g.dropNext = now.Add(time.Duration(float64(g.ival) / math.Sqrt(float64(g.dropCount))))
	return true
}

// observe feeds one admission's slot wait into the CoDel state machine
// and the sojourn EWMA.
func (g *Gate) observe(wait time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	// EWMA with alpha 0.3, the smoothing the rest of the system uses.
	g.sojourn = time.Duration(0.3*float64(wait) + 0.7*float64(g.sojourn))
	if g.target <= 0 {
		return
	}
	now := g.now()
	if wait < g.target {
		// Congestion cleared: leave the dropping state entirely.
		g.firstAbove = time.Time{}
		g.dropping = false
		g.dropCount = 0
		return
	}
	switch {
	case g.firstAbove.IsZero():
		// First observation above target: give the queue one interval to
		// drain on its own before dropping starts.
		g.firstAbove = now.Add(g.ival)
	case !g.dropping && now.After(g.firstAbove):
		// Still above target a full interval later: start dropping.
		g.dropping = true
		// Re-entering drop state soon after leaving it resumes near the
		// previous rate instead of from scratch (CoDel's hysteresis);
		// with dropCount reset on clear this is a fresh start.
		if g.dropCount < 1 {
			g.dropCount = 1
		}
		g.dropNext = now
	}
}

// granted finalizes a won slot, handing it straight back if the context
// ended while the select was deciding.
func (g *Gate) granted(ctx context.Context) (func(), error) {
	if err := ctx.Err(); err != nil {
		<-g.sem
		return nil, err
	}
	g.queued.Add(1)
	return g.release, nil
}

func (g *Gate) release() {
	g.queued.Add(-1)
	<-g.sem
}

// Stressed reports whether the gate is currently in its dropping state —
// shedding admissions at entry because slot waits have stayed above the
// sojourn target.
func (g *Gate) Stressed() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dropping
}

// RetryAfter estimates, in whole seconds (at least 1, at most 30), how
// long a shed caller should wait before retrying, derived from the
// gate's live state: the smoothed slot wait, doubled while the gate is
// in its dropping state. Servers put it in the 503 Retry-After header
// so backoff advice tracks actual congestion instead of a constant.
func (g *Gate) RetryAfter() int {
	if g == nil {
		return 1
	}
	g.mu.Lock()
	sojourn := g.sojourn
	dropping := g.dropping
	g.mu.Unlock()
	est := 2 * sojourn
	if est < g.timeout {
		est = g.timeout
	}
	if dropping {
		est *= 2
	}
	secs := int(math.Ceil(est.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}
