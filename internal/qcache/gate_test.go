package qcache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"starts/internal/obs"
)

// An already-cancelled context must never be granted a slot. The old
// fast path selected between the semaphore and nothing, and the queued
// path selected among semaphore/timer/ctx.Done() — select picks among
// ready cases at random, so a cancelled context could still win a slot
// and burn fill capacity.
func TestGateRefusesCancelledContext(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate(4, time.Second, reg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// The select race only misbehaves a fraction of the time; iterate so
	// a regression cannot pass by luck.
	for i := 0; i < 200; i++ {
		release, err := g.Acquire(ctx)
		if err == nil {
			release()
			t.Fatalf("iteration %d: cancelled context acquired a slot", i)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v; want context.Canceled", i, err)
		}
	}
	if got := reg.Gauge(obs.MQCacheInflight).Value(); got != 0 {
		t.Fatalf("inflight gauge = %d after refused admissions, want 0", got)
	}
	// The gate must still have all its slots: a healthy caller fills it
	// to capacity without shedding.
	var releases []func()
	for i := 0; i < 4; i++ {
		r, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatalf("healthy Acquire %d failed: %v (slot leaked to a cancelled context?)", i, err)
		}
		releases = append(releases, r)
	}
	for _, r := range releases {
		r()
	}
}

// A context cancelled while queueing gets ctx.Err(), not a slot and not
// an ErrShed.
func TestGateCancelledWhileQueued(t *testing.T) {
	g := NewGate(1, time.Minute, obs.NewRegistry())
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the acquirer reach the queue
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued Acquire err = %v; want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued Acquire did not return after cancellation")
	}
}

// TestGateAdaptiveShedding drives a CoDel-configured gate into sustained
// congestion and pins the whole adaptive lifecycle: no entry drops while
// healthy, entry drops (fast, before any wait) once slot waits stay
// above target for an interval, and a return to sub-target waits leaves
// the dropping state.
func TestGateAdaptiveShedding(t *testing.T) {
	// A controllable clock drives both the gate's interval arithmetic and
	// the test's phases deterministically.
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	g := NewGateConfig(GateConfig{
		MaxInflight:  1,
		QueueTimeout: time.Second,
		Target:       5 * time.Millisecond,
		Interval:     50 * time.Millisecond,
		Metrics:      obs.NewRegistry(),
		Now:          clock,
	})

	// Healthy: free slots, zero sojourn, no drops ever.
	for i := 0; i < 10; i++ {
		release, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatalf("healthy acquire %d: %v", i, err)
		}
		release()
	}
	if g.Stressed() {
		t.Fatal("gate stressed with zero sojourn")
	}

	// Congested: feed the controller sustained above-target waits (the
	// observe path is exercised directly through the state machine by
	// simulating what Acquire records: long slot waits).
	g.observe(20 * time.Millisecond) // first above target: arms firstAbove
	advance(60 * time.Millisecond)   // a full interval passes, still above
	g.observe(20 * time.Millisecond) // -> dropping
	if !g.Stressed() {
		t.Fatal("gate not dropping after sustained above-target waits")
	}
	// Entry drop: with dropNext due, the next Acquire sheds at the door
	// without waiting out the timeout.
	start := time.Now()
	_, err := g.Acquire(context.Background())
	if !errors.Is(err, ErrShed) {
		t.Fatalf("congested acquire err = %v, want ErrShed", err)
	}
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Errorf("entry drop took %v; it must not burn the queue timeout", waited)
	}
	if g.RetryAfter() < 1 {
		t.Errorf("RetryAfter = %d, want >= 1", g.RetryAfter())
	}

	// Drop spacing accelerates: the second drop is due interval/sqrt(2)
	// after the first, not a full interval.
	advance(40 * time.Millisecond) // 50/sqrt(2) ~ 35ms < 40ms
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("second congested acquire err = %v, want ErrShed", err)
	}

	// Recovery: one sub-target wait clears the dropping state; admissions
	// flow again.
	g.observe(0)
	if g.Stressed() {
		t.Fatal("gate still dropping after sub-target wait")
	}
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("recovered acquire: %v", err)
	}
	release()
}

// TestGateRetryAfterTracksCongestion pins that RetryAfter derives from
// live gate state: it grows with the smoothed slot wait and is clamped
// to [1, 30] seconds. A nil gate answers a safe constant.
func TestGateRetryAfterTracksCongestion(t *testing.T) {
	g := NewGateConfig(GateConfig{
		MaxInflight:  1,
		QueueTimeout: 500 * time.Millisecond,
		Metrics:      obs.NewRegistry(),
	})
	if got := g.RetryAfter(); got != 1 {
		t.Errorf("idle RetryAfter = %d, want 1 (ceil of the queue timeout)", got)
	}
	for i := 0; i < 40; i++ {
		g.observe(8 * time.Second)
	}
	got := g.RetryAfter()
	if got < 10 || got > 30 {
		t.Errorf("congested RetryAfter = %d, want within [10, 30]", got)
	}
	var nilGate *Gate
	if nilGate.RetryAfter() != 1 || nilGate.Stressed() {
		t.Error("nil gate should answer RetryAfter 1, not stressed")
	}
}

// TestGatePlainTimeoutUnchanged pins that without an admission target
// the gate never enters the dropping state, however long the waits: the
// fixed-timeout contract of NewGate is preserved.
func TestGatePlainTimeoutUnchanged(t *testing.T) {
	g := NewGate(1, 50*time.Millisecond, obs.NewRegistry())
	for i := 0; i < 20; i++ {
		g.observe(time.Second)
	}
	if g.Stressed() {
		t.Fatal("timeout-only gate entered the dropping state")
	}
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("full-gate acquire err = %v, want ErrShed after the timeout", err)
	}
}
