package qcache

import (
	"context"
	"errors"
	"testing"
	"time"

	"starts/internal/obs"
)

// An already-cancelled context must never be granted a slot. The old
// fast path selected between the semaphore and nothing, and the queued
// path selected among semaphore/timer/ctx.Done() — select picks among
// ready cases at random, so a cancelled context could still win a slot
// and burn fill capacity.
func TestGateRefusesCancelledContext(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate(4, time.Second, reg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// The select race only misbehaves a fraction of the time; iterate so
	// a regression cannot pass by luck.
	for i := 0; i < 200; i++ {
		release, err := g.Acquire(ctx)
		if err == nil {
			release()
			t.Fatalf("iteration %d: cancelled context acquired a slot", i)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v; want context.Canceled", i, err)
		}
	}
	if got := reg.Gauge(obs.MQCacheInflight).Value(); got != 0 {
		t.Fatalf("inflight gauge = %d after refused admissions, want 0", got)
	}
	// The gate must still have all its slots: a healthy caller fills it
	// to capacity without shedding.
	var releases []func()
	for i := 0; i < 4; i++ {
		r, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatalf("healthy Acquire %d failed: %v (slot leaked to a cancelled context?)", i, err)
		}
		releases = append(releases, r)
	}
	for _, r := range releases {
		r()
	}
}

// A context cancelled while queueing gets ctx.Err(), not a slot and not
// an ErrShed.
func TestGateCancelledWhileQueued(t *testing.T) {
	g := NewGate(1, time.Minute, obs.NewRegistry())
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the acquirer reach the queue
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued Acquire err = %v; want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued Acquire did not return after cancellation")
	}
}
