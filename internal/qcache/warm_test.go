package qcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/obs"
)

func TestWorkloadRoundTrip(t *testing.T) {
	in := []WarmEntry{
		{Key: "k1", Ranking: `list((body-of-text "database"))`, MaxResults: 10},
		{Key: "k2", Filter: `((author "ullman") and (title "databases"))`},
	}
	var buf bytes.Buffer
	if err := SaveWorkload(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("loaded %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}

	path := filepath.Join(t.TempDir(), "workload.jsonl")
	if err := SaveWorkloadFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err = LoadWorkloadFile(path)
	if err != nil || len(out) != len(in) {
		t.Fatalf("file round trip: %v, %d entries", err, len(out))
	}
}

func TestRecorderDedupAndBound(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(WarmEntry{Key: fmt.Sprintf("k%d", i)})
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want the bound 3", got)
	}
	es := r.Entries()
	if es[0].Key != "k2" || es[2].Key != "k4" {
		t.Fatalf("entries = %v, want the 3 most recent (k2..k4)", es)
	}
	// Re-recording refreshes recency: k2 survives the next insertion.
	r.Record(WarmEntry{Key: "k2", MaxResults: 7})
	r.Record(WarmEntry{Key: "k5"})
	es = r.Entries()
	keys := map[string]WarmEntry{}
	for _, e := range es {
		keys[e.Key] = e
	}
	if _, ok := keys["k3"]; ok {
		t.Fatal("k3 survived; want it dropped as least recently recorded")
	}
	if e, ok := keys["k2"]; !ok || e.MaxResults != 7 {
		t.Fatalf("k2 = %+v, want refreshed entry with MaxResults 7", e)
	}
	// Keyless entries are ignored rather than poisoning the ring.
	r.Record(WarmEntry{Filter: "orphan"})
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d after keyless record, want 3", got)
	}
}

func TestWarmReplaysDedupesAndSkipsFresh(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{TTL: time.Hour, Metrics: reg})
	c.Put("fresh", "already here")

	var ran atomic.Int64
	entries := []WarmEntry{
		{Key: "a"},
		{Key: "a"},     // duplicate: skipped
		{Key: "fresh"}, // already cached: skipped
		{Key: "b"},
		{Key: "bad"},
	}
	stats := c.Warm(context.Background(), entries, 2, func(_ context.Context, e WarmEntry) error {
		ran.Add(1)
		if e.Key == "bad" {
			return errors.New("does not parse anymore")
		}
		c.Put(e.Key, "warmed")
		return nil
	})
	if stats.Replayed != 2 || stats.Skipped != 2 || stats.Errors != 1 {
		t.Fatalf("stats = %+v, want 2 replayed, 2 skipped, 1 error", stats)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("run invoked %d times, want 3", got)
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("replayed entry b not in cache")
	}
	if got := reg.Counter(obs.MQCacheWarmReplayed).Value(); got != 2 {
		t.Errorf("warm replayed counter = %d, want 2", got)
	}
	if got := reg.Counter(obs.MQCacheWarmSkipped).Value(); got != 2 {
		t.Errorf("warm skipped counter = %d, want 2", got)
	}
	if got := reg.Counter(obs.MQCacheWarmErrors).Value(); got != 1 {
		t.Errorf("warm errors counter = %d, want 1", got)
	}
}

func TestWarmHonorsConcurrencyBound(t *testing.T) {
	c := New(Config{})
	var inflight, peak atomic.Int64
	entries := make([]WarmEntry, 12)
	for i := range entries {
		entries[i] = WarmEntry{Key: fmt.Sprintf("k%d", i)}
	}
	c.Warm(context.Background(), entries, 3, func(context.Context, WarmEntry) error {
		n := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency = %d, want <= 3", p)
	}
}

func TestWarmStopsOnCancelledContext(t *testing.T) {
	c := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	stats := c.Warm(ctx, []WarmEntry{{Key: "a"}, {Key: "b"}}, 1, func(context.Context, WarmEntry) error {
		ran.Add(1)
		return nil
	})
	if got := ran.Load(); got != 0 {
		t.Fatalf("run invoked %d times under a cancelled context, want 0", got)
	}
	if stats.Replayed != 0 {
		t.Fatalf("stats = %+v, want nothing replayed", stats)
	}
}
