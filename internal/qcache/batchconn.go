package qcache

import (
	"context"

	"starts/internal/query"
	"starts/internal/result"
)

// BatchSourceConn is a SourceConn that can evaluate several queries in
// one wire call (structurally client.BatchConn; declared here so the
// dependency keeps pointing outward).
type BatchSourceConn interface {
	SourceConn
	QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error)
}

// BatchConn is the caching middleware over a batch-capable source: a
// QueryBatch serves what it can from cache and forwards only the misses
// — still as one inner wire call — then fills the cache with each
// successful miss under the same freshness-derived TTL the per-item
// path uses. Hits cost no wire traffic at all, and a shrunken miss
// batch still amortizes one round trip.
//
// Unlike the per-item Query path, batch lookups do not coalesce with
// in-flight fills or serve stale (Get is strict); the dispatch layer
// above already coalesces identical in-flight queries by fingerprint.
type BatchConn struct {
	*Conn
	binner BatchSourceConn
}

var _ BatchSourceConn = (*BatchConn)(nil)

// WrapBatchConn wraps a batch-capable inner like WrapConn. Prefer
// WrapConn, which picks this variant automatically.
func WrapBatchConn(inner BatchSourceConn, cache *Cache) *BatchConn {
	return &BatchConn{Conn: newConn(inner, cache), binner: inner}
}

// QueryBatch implements BatchSourceConn.
func (c *BatchConn) QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error) {
	if c.cache == nil {
		return c.binner.QueryBatch(ctx, qs)
	}
	results := make([]*result.Results, len(qs))
	errs := make([]error, len(qs))
	var missIdx []int
	var missQs []*query.Query
	for i, q := range qs {
		if v, ok := c.cache.Get(c.keyer.Key(q)); ok {
			// Cached results are shared; batch consumers get the same
			// read-only contract the per-item path documents.
			results[i] = v.(*result.Results)
			continue
		}
		missIdx = append(missIdx, i)
		missQs = append(missQs, q)
	}
	if len(missQs) == 0 {
		return results, errs
	}
	mres, merrs := c.binner.QueryBatch(ctx, missQs)
	ttl := c.freshTTL()
	for j, i := range missIdx {
		if j < len(merrs) && merrs[j] != nil {
			errs[i] = merrs[j]
			continue
		}
		if j < len(mres) {
			results[i] = mres[j]
			if mres[j] != nil {
				c.cache.PutTTL(c.keyer.Key(missQs[j]), mres[j], ttl)
			}
		}
	}
	return results, errs
}
