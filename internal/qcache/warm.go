package qcache

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"starts/internal/obs"
)

// WarmEntry is one recorded workload item: the cache fingerprint of a
// query plus enough of its text to replay it after a restart. Key is the
// fingerprint the query mapped to when recorded; replays recompute their
// own key, so a stale Key only costs a redundant replay, never a wrong
// entry. Filter and Ranking hold Basic-1 expression text.
type WarmEntry struct {
	Key        string `json:"key,omitempty"`
	Filter     string `json:"filter,omitempty"`
	Ranking    string `json:"ranking,omitempty"`
	MaxResults int    `json:"max_results,omitempty"`
}

// SaveWorkload writes entries as JSON lines, one WarmEntry per line —
// append-friendly and diffable.
func SaveWorkload(w io.Writer, entries []WarmEntry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("qcache: encoding workload entry: %w", err)
		}
	}
	return bw.Flush()
}

// LoadWorkload reads a JSON-lines workload written by SaveWorkload,
// skipping blank lines.
func LoadWorkload(r io.Reader) ([]WarmEntry, error) {
	var out []WarmEntry
	dec := json.NewDecoder(r)
	for {
		var e WarmEntry
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("qcache: decoding workload entry %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}

// SaveWorkloadFile writes a workload file atomically enough for a CLI:
// the whole file is rewritten in place.
func SaveWorkloadFile(path string, entries []WarmEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveWorkload(f, entries); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadWorkloadFile reads a workload file written by SaveWorkloadFile.
func LoadWorkloadFile(path string) ([]WarmEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWorkload(f)
}

// Recorder keeps the most recent distinct workload entries, bounded and
// deduplicated by Key, so a long-running metasearcher always has a
// replayable warm-start workload of its hot queries on hand. The zero
// Recorder is not usable; NewRecorder returns one. Safe for concurrent
// use.
type Recorder struct {
	mu    sync.Mutex
	max   int
	order []string // keys, least recently recorded first
	byKey map[string]WarmEntry
}

// DefaultRecorderSize bounds a NewRecorder(0) recorder.
const DefaultRecorderSize = 512

// NewRecorder returns a recorder keeping up to max distinct entries
// (DefaultRecorderSize if max <= 0).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultRecorderSize
	}
	return &Recorder{max: max, byKey: map[string]WarmEntry{}}
}

// Record notes one served query. Re-recording a key refreshes its entry
// and its recency; past capacity the least recently recorded entry is
// dropped, so the recorder tracks the hot set, not the full history.
func (r *Recorder) Record(e WarmEntry) {
	if r == nil || e.Key == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.byKey[e.Key]; known {
		for i, k := range r.order {
			if k == e.Key {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
	}
	r.byKey[e.Key] = e
	r.order = append(r.order, e.Key)
	for len(r.order) > r.max {
		delete(r.byKey, r.order[0])
		r.order = r.order[1:]
	}
}

// Entries lists the recorded workload, least recently recorded first.
func (r *Recorder) Entries() []WarmEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WarmEntry, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.byKey[k])
	}
	return out
}

// Len reports how many distinct entries are recorded.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// WarmStats reports one Warm run.
type WarmStats struct {
	// Replayed counts entries whose replay succeeded.
	Replayed int
	// Skipped counts duplicates and entries already fresh in the cache.
	Skipped int
	// Errors counts entries whose replay failed (parse or search).
	Errors int
	// Elapsed is the whole replay's wall time.
	Elapsed time.Duration
}

// String summarizes the stats for logs and shells.
func (s WarmStats) String() string {
	return fmt.Sprintf("replayed %d (skipped %d, errors %d) in %v",
		s.Replayed, s.Skipped, s.Errors, s.Elapsed.Round(time.Millisecond))
}

// DefaultWarmConcurrency bounds Warm's replay parallelism when the
// caller passes 0.
const DefaultWarmConcurrency = 4

// Warm replays a recorded workload so a restarted process does not take
// a cold-start latency cliff on its hot queries. Each entry runs through
// run — typically a cache-fronted search whose fills pass this cache's
// admission gate — with at most concurrency replays in flight
// (DefaultWarmConcurrency if <= 0). Entries with a Key are deduplicated
// and skipped when the key is already fresh; a cancelled ctx stops
// launching new replays. Outcomes count into the registry as the
// starts_qcache_warm_* metrics.
func (c *Cache) Warm(ctx context.Context, entries []WarmEntry, concurrency int, run func(context.Context, WarmEntry) error) WarmStats {
	start := time.Now()
	if concurrency <= 0 {
		concurrency = DefaultWarmConcurrency
	}
	var (
		mu    sync.Mutex
		stats WarmStats
		wg    sync.WaitGroup
	)
	sem := make(chan struct{}, concurrency)
	seen := map[string]bool{}
	for _, e := range entries {
		if ctx.Err() != nil {
			break
		}
		if e.Key != "" {
			if seen[e.Key] {
				stats.Skipped++
				continue
			}
			seen[e.Key] = true
			if _, fresh := c.Get(e.Key); fresh {
				stats.Skipped++
				continue
			}
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(e WarmEntry) {
			defer wg.Done()
			defer func() { <-sem }()
			err := run(ctx, e)
			mu.Lock()
			if err != nil {
				stats.Errors++
			} else {
				stats.Replayed++
			}
			mu.Unlock()
		}(e)
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	c.metrics.Counter(obs.MQCacheWarmReplayed).Add(int64(stats.Replayed))
	c.metrics.Counter(obs.MQCacheWarmSkipped).Add(int64(stats.Skipped))
	c.metrics.Counter(obs.MQCacheWarmErrors).Add(int64(stats.Errors))
	c.metrics.Histogram(obs.MQCacheWarmSeconds).Observe(stats.Elapsed)
	return stats
}
