package qcache

import (
	"testing"

	"starts/internal/query"
)

func mustFilter(t *testing.T, src string) *query.Query {
	t.Helper()
	q := query.New()
	f, err := query.ParseFilter(src)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", src, err)
	}
	q.Filter = f
	return q
}

func mustRanking(t *testing.T, src string) *query.Query {
	t.Helper()
	q := query.New()
	r, err := query.ParseRanking(src)
	if err != nil {
		t.Fatalf("ParseRanking(%q): %v", src, err)
	}
	q.Ranking = r
	return q
}

// TestCommutativeOperandsShareKey is the regression test for the
// canonical-fingerprint bug: commutative and/or operands must be
// order-insensitive, so `a AND b` and `b AND a` share one cache entry.
func TestCommutativeOperandsShareKey(t *testing.T) {
	k := Keyer{Scope: "test"}
	cases := []struct {
		name string
		a, b string
		same bool
	}{
		{"and-commutes", `((title "a") and (title "b"))`, `((title "b") and (title "a"))`, true},
		{"or-commutes", `((title "a") or (title "b"))`, `((title "b") or (title "a"))`, true},
		{"and-associates", `(((title "a") and (title "b")) and (title "c"))`, `((title "a") and ((title "c") and (title "b")))`, true},
		{"and-not-ordered", `((title "a") and-not (title "b"))`, `((title "b") and-not (title "a"))`, false},
		{"and-vs-or", `((title "a") and (title "b"))`, `((title "a") or (title "b"))`, false},
		{"different-terms", `((title "a") and (title "b"))`, `((title "a") and (title "c"))`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ka := k.Key(mustFilter(t, tc.a))
			kb := k.Key(mustFilter(t, tc.b))
			if (ka == kb) != tc.same {
				t.Errorf("Key(%s) vs Key(%s): same=%v, want %v\ncanonical a: %s\ncanonical b: %s",
					tc.a, tc.b, ka == kb, tc.same,
					Canonical(mustFilter(t, tc.a)), Canonical(mustFilter(t, tc.b)))
			}
		})
	}
}

func TestRankingCommutes(t *testing.T) {
	k := Keyer{}
	a := k.Key(mustRanking(t, `((body-of-text "x") and (body-of-text "y"))`))
	b := k.Key(mustRanking(t, `((body-of-text "y") and (body-of-text "x"))`))
	if a != b {
		t.Errorf("commutative ranking and did not share a key")
	}
	// List order is preserved: we do not claim list((a)(b)) == list((b)(a)).
	la := k.Key(mustRanking(t, `list(("a") ("b"))`))
	lb := k.Key(mustRanking(t, `list(("b") ("a"))`))
	if la == lb {
		t.Errorf("list operand order unexpectedly ignored")
	}
}

func TestDefaultsNormalized(t *testing.T) {
	k := Keyer{}
	// An explicit default weight (1) fingerprints like no weight.
	a := k.Key(mustRanking(t, `list((body-of-text "db" 1))`))
	b := k.Key(mustRanking(t, `list((body-of-text "db"))`))
	if a != b {
		t.Errorf("default weight not normalized:\n%s\n%s",
			Canonical(mustRanking(t, `list((body-of-text "db" 1))`)),
			Canonical(mustRanking(t, `list((body-of-text "db"))`)))
	}
	// MaxResults 0 means the default; spelling the default out matches.
	qa, qb := mustRanking(t, `list(("db"))`), mustRanking(t, `list(("db"))`)
	qa.MaxResults = 0
	qb.MaxResults = query.DefaultMaxResults
	if k.Key(qa) != k.Key(qb) {
		t.Errorf("default MaxResults not normalized")
	}
	// A different result bound is a different answer.
	qb.MaxResults = 3
	if k.Key(qa) == k.Key(qb) {
		t.Errorf("MaxResults ignored by the fingerprint")
	}
}

func TestSourcesSetShaped(t *testing.T) {
	k := Keyer{}
	qa, qb := mustRanking(t, `list(("db"))`), mustRanking(t, `list(("db"))`)
	qa.Sources = []string{"s1", "s2"}
	qb.Sources = []string{"s2", "s1"}
	if k.Key(qa) != k.Key(qb) {
		t.Errorf("Sources order changed the fingerprint")
	}
}

func TestScopeSeparatesNamespaces(t *testing.T) {
	q := mustRanking(t, `list(("db"))`)
	if (Keyer{Scope: "a"}).Key(q) == (Keyer{Scope: "b"}).Key(q) {
		t.Errorf("distinct scopes produced colliding keys")
	}
}
