package qcache

import (
	"container/list"
	"sync"
	"time"

	"starts/internal/obs"
)

// Entry is one stored value with its freshness bounds. Values are shared
// across callers and must be treated as read-only.
type Entry struct {
	// Val is the cached value.
	Val any
	// Expires bounds the entry's fresh lifetime.
	Expires time.Time
	// StaleUntil bounds how long past Expires the entry may still be
	// served stale while a background refresh runs.
	StaleUntil time.Time
}

// dead reports whether the entry is past even its stale window.
func (e Entry) dead(now time.Time) bool { return now.After(e.StaleUntil) }

// Store is the cache's pluggable storage backend, keyed by the same
// canonical query fingerprints Keyer produces. The Cache keeps
// singleflight coalescing and the admission gate in front of any Store,
// so a backend only ever sees deduplicated, admission-bounded fills —
// a shared backend (e.g. a peer metasearcher tier) plugs in here without
// re-implementing either.
//
// Implementations must be safe for concurrent use. Get receives the
// cache's current time so a store may prune entries it finds dead (past
// StaleUntil); it must report such entries as absent either way.
type Store interface {
	// Get returns the live entry under key, if any.
	Get(key string, now time.Time) (Entry, bool)
	// Put inserts or replaces the entry under key, evicting as the
	// backend's capacity policy requires.
	Put(key string, e Entry)
	// Evict removes key if present.
	Evict(key string)
	// Len reports the live entry count.
	Len() int
}

// lruStore is the default Store: a sharded LRU bounded at a per-shard
// capacity, each shard one lock domain with a map into an LRU list
// (front = most recently used).
type lruStore struct {
	shards    []*lruShard
	mask      uint32
	perShard  int
	entries   *obs.Gauge
	evictions *obs.Counter
}

type lruShard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	ll    *list.List
}

// lruItem is one LRU list element: the entry plus its key, so tail
// eviction can delete from the map.
type lruItem struct {
	key string
	e   Entry
}

// NewLRUStore returns the default sharded LRU+TTL store: maxEntries
// bounds the size across all shards (default 4096), shards is rounded up
// to a power of two (default 16; more shards, less mutex contention).
// Evictions and the live-entry count record into reg (nil allocates a
// private registry) as obs.MQCacheEvictions and obs.MQCacheEntries.
func NewLRUStore(maxEntries, shards int, reg *obs.Registry) Store {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	if shards <= 0 {
		shards = 16
	}
	nshards := 1
	for nshards < shards {
		nshards <<= 1
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &lruStore{
		shards:    make([]*lruShard, nshards),
		mask:      uint32(nshards - 1),
		perShard:  (maxEntries + nshards - 1) / nshards,
		entries:   reg.Gauge(obs.MQCacheEntries),
		evictions: reg.Counter(obs.MQCacheEvictions),
	}
	for i := range s.shards {
		s.shards[i] = &lruShard{items: map[string]*list.Element{}, ll: list.New()}
	}
	return s
}

func (s *lruStore) shard(key string) *lruShard {
	return s.shards[fnv32a(key)&s.mask]
}

// Get finds key, touching live entries and pruning dead ones under the
// shard lock.
func (s *lruStore) Get(key string, now time.Time) (Entry, bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		return Entry{}, false
	}
	it := el.Value.(*lruItem)
	if it.e.dead(now) {
		sh.ll.Remove(el)
		delete(sh.items, key)
		s.entries.Add(-1)
		return Entry{}, false
	}
	sh.ll.MoveToFront(el)
	return it.e, true
}

// Put inserts (or refreshes) key, evicting from the shard's LRU tail
// past its capacity.
func (s *lruStore) Put(key string, e Entry) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		el.Value = &lruItem{key: key, e: e}
		sh.ll.MoveToFront(el)
		return
	}
	sh.items[key] = sh.ll.PushFront(&lruItem{key: key, e: e})
	s.entries.Add(1)
	for sh.ll.Len() > s.perShard {
		tail := sh.ll.Back()
		sh.ll.Remove(tail)
		delete(sh.items, tail.Value.(*lruItem).key)
		s.entries.Add(-1)
		s.evictions.Inc()
	}
}

// Evict removes key if present.
func (s *lruStore) Evict(key string) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		sh.ll.Remove(el)
		delete(sh.items, key)
		s.entries.Add(-1)
	}
}

// Len reports the live entry count across all shards.
func (s *lruStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// fnv32a is the 32-bit FNV-1a hash, used only to pick a shard.
func fnv32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}
