package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/obs"
)

// fakeClock is a settable clock for expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func fillConst(v any) func(context.Context) (any, error) {
	return func(context.Context) (any, error) { return v, nil }
}

func TestDoHitMissTTL(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	c := New(Config{TTL: time.Minute, StaleFor: -1, Metrics: reg, Now: clk.now})
	ctx := context.Background()

	v, out, err := c.Do(ctx, "k", fillConst("one"))
	if err != nil || out != Filled || v != "one" {
		t.Fatalf("first Do = %v, %v, %v; want one, miss, nil", v, out, err)
	}
	v, out, _ = c.Do(ctx, "k", fillConst("two"))
	if out != Hit || v != "one" {
		t.Fatalf("second Do = %v, %v; want cached one, hit", v, out)
	}
	// Past TTL with stale serving disabled: a plain miss refills.
	clk.advance(2 * time.Minute)
	v, out, _ = c.Do(ctx, "k", fillConst("two"))
	if out != Filled || v != "two" {
		t.Fatalf("post-TTL Do = %v, %v; want two, miss", v, out)
	}
	if got := reg.Counter(obs.MQCacheHits).Value(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := reg.Counter(obs.MQCacheMisses).Value(); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := reg.Gauge(obs.MQCacheEntries).Value(); got != 1 {
		t.Errorf("entries gauge = %d, want 1", got)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, "k", func(context.Context) (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, out, err := c.Do(ctx, "k", fillConst("ok"))
	if err != nil || out != Filled || v != "ok" {
		t.Fatalf("Do after error = %v, %v, %v; want ok, miss, nil", v, out, err)
	}
}

func TestStaleWhileRevalidate(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	c := New(Config{TTL: time.Minute, StaleFor: 10 * time.Minute, Metrics: reg, Now: clk.now})
	ctx := context.Background()

	var fills atomic.Int64
	fill := func(context.Context) (any, error) {
		return fmt.Sprintf("v%d", fills.Add(1)), nil
	}
	if v, out, _ := c.Do(ctx, "k", fill); out != Filled || v != "v1" {
		t.Fatalf("prime = %v, %v", v, out)
	}
	clk.advance(5 * time.Minute) // expired, within stale window

	v, out, err := c.Do(ctx, "k", fill)
	if err != nil || out != Stale || v != "v1" {
		t.Fatalf("stale Do = %v, %v, %v; want v1, stale, nil", v, out, err)
	}
	// The background refresh replaces the entry; poll until it lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := c.Get("k"); ok && v == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background refresh never landed")
		}
		time.Sleep(time.Millisecond)
	}
	if v, out, _ := c.Do(ctx, "k", fill); out != Hit || v != "v2" {
		t.Fatalf("post-refresh Do = %v, %v; want v2, hit", v, out)
	}
	if got := reg.Counter(obs.MQCacheStale).Value(); got != 1 {
		t.Errorf("stale counter = %d, want 1", got)
	}
	// Far past the stale window the entry is gone entirely.
	clk.advance(time.Hour)
	if _, out, _ := c.Do(ctx, "k", fill); out != Filled {
		t.Errorf("outcome past stale window = %v, want miss", out)
	}
}

// TestStaleServesDoNotStampede: many concurrent stale serves trigger at
// most one background refresh.
func TestStaleServesDoNotStampede(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{TTL: time.Minute, StaleFor: time.Hour, Now: clk.now})
	ctx := context.Background()

	var fills atomic.Int64
	block := make(chan struct{})
	fill := func(context.Context) (any, error) {
		if fills.Add(1) > 1 {
			<-block
		}
		return "v", nil
	}
	if _, _, err := c.Do(ctx, "k", fill); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Minute)

	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, out, err := c.Do(ctx, "k", fill); err != nil || out != Stale {
				t.Errorf("stale Do = %v, %v", out, err)
			}
		}()
	}
	wg.Wait()
	close(block)
	// 1 prime + exactly 1 refresh: Solo dedupes, and once the refresh
	// lands the entry is fresh again so no further refresh can start.
	deadline := time.Now().Add(5 * time.Second)
	for fills.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("refresh never ran (fills = %d)", fills.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := fills.Load(); got != 2 {
		t.Errorf("fills = %d, want 2 (prime + one deduped refresh)", got)
	}
}

func TestCoalescing(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{Metrics: reg})
	ctx := context.Background()

	const joiners = 9
	var fills atomic.Int64
	fill := func(context.Context) (any, error) {
		fills.Add(1)
		// Hold the flight open until every joiner has registered, so the
		// test is deterministic rather than timing-dependent.
		deadline := time.Now().Add(5 * time.Second)
		for reg.Counter(obs.MQCacheCoalesced).Value() < joiners {
			if time.Now().After(deadline) {
				return nil, errors.New("joiners never arrived")
			}
			time.Sleep(100 * time.Microsecond)
		}
		return "v", nil
	}

	var wg sync.WaitGroup
	outcomes := make([]Outcome, joiners+1)
	errs := make([]error, joiners+1)
	for i := 0; i <= joiners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outcomes[i], errs[i] = c.Do(ctx, "k", fill)
		}(i)
	}
	wg.Wait()
	var filled, coalesced int
	for i := range outcomes {
		if errs[i] != nil {
			t.Fatalf("Do[%d]: %v", i, errs[i])
		}
		switch outcomes[i] {
		case Filled:
			filled++
		case Coalesced:
			coalesced++
		default:
			t.Errorf("Do[%d] outcome = %v", i, outcomes[i])
		}
	}
	if filled != 1 || coalesced != joiners {
		t.Errorf("filled=%d coalesced=%d, want 1 and %d", filled, coalesced, joiners)
	}
	if got := fills.Load(); got != 1 {
		t.Errorf("fill ran %d times, want 1", got)
	}
	if got := reg.Counter(obs.MQCacheCoalesced).Value(); got != joiners {
		t.Errorf("coalesced counter = %d, want %d", got, joiners)
	}
}

func TestCoalescedCallerHonorsItsContext(t *testing.T) {
	c := New(Config{})
	release := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func(context.Context) (any, error) {
			<-release
			return "v", nil
		})
	}()
	// Wait for the leader's flight to exist.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.flight.mu.Lock()
		_, inFlight := c.flight.calls["k"]
		c.flight.mu.Unlock()
		if inFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never took flight")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, out, err := c.Do(ctx, "k", fillConst("x"))
	if out != Coalesced || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cancelled joiner = %v, %v; want coalesced, deadline exceeded", out, err)
	}
	close(release)
}

func TestShedding(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{MaxInflight: 1, QueueTimeout: 30 * time.Millisecond, Metrics: reg})
	ctx := context.Background()

	hold := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.Do(ctx, "slow", func(context.Context) (any, error) {
			close(started)
			<-hold
			return "v", nil
		})
	}()
	<-started

	// A different key cannot coalesce; it must wait for the gate and be
	// shed within the queue timeout.
	begin := time.Now()
	_, _, err := c.Do(ctx, "other", fillConst("x"))
	elapsed := time.Since(begin)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if elapsed > time.Second {
		t.Errorf("shed took %v, want within the queue timeout", elapsed)
	}
	if got := reg.Counter(obs.MQCacheShed).Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	close(hold)

	// With the slot free again, the same key fills normally.
	if _, out, err := c.Do(ctx, "other", fillConst("x")); err != nil || out != Filled {
		t.Errorf("post-release Do = %v, %v", out, err)
	}
}

func TestLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	// One shard so the LRU order is global and deterministic.
	c := New(Config{MaxEntries: 3, Shards: 1, Metrics: reg})
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} {
		if _, _, err := c.Do(ctx, k, fillConst(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if _, _, err := c.Do(ctx, "d", fillConst("d")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("b"); ok {
		t.Errorf("b survived eviction; want it evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted; want it resident", k)
		}
	}
	if got := c.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	if got := reg.Counter(obs.MQCacheEvictions).Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := reg.Gauge(obs.MQCacheEntries).Value(); got != 3 {
		t.Errorf("entries gauge = %d, want 3", got)
	}
}

// TestConcurrentMixedLoad drives every path at once under -race.
func TestConcurrentMixedLoad(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MaxEntries: 32, Shards: 4, TTL: time.Minute, StaleFor: time.Hour,
		MaxInflight: 4, QueueTimeout: 5 * time.Millisecond, Now: clk.now})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%40)
				_, _, err := c.Do(ctx, key, fillConst(key))
				if err != nil && !errors.Is(err, ErrShed) {
					t.Errorf("Do: %v", err)
					return
				}
				if i%50 == 0 {
					clk.advance(30 * time.Second)
				}
			}
		}(g)
	}
	wg.Wait()
}

// Per-entry lifetimes: a TTLFill's ttl is honored verbatim inside
// [TTLFloor, TTLCeiling], clamped outside it, and 0 falls back to
// Config.TTL.
func TestPerEntryTTLClamping(t *testing.T) {
	cases := []struct {
		name string
		ttl  time.Duration
		want time.Duration // effective fresh lifetime
	}{
		{"fallback", 0, time.Minute},
		{"in-bounds", 30 * time.Second, 30 * time.Second},
		{"below-floor", 100 * time.Millisecond, time.Second},
		{"negative-past-expiry", -5 * time.Minute, time.Second},
		{"above-ceiling", 48 * time.Hour, 24 * time.Hour},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			c := New(Config{TTL: time.Minute, TTLFloor: time.Second, TTLCeiling: 24 * time.Hour,
				StaleFor: -1, Now: clk.now})
			ctx := context.Background()
			_, out, err := c.DoTTL(ctx, "k", func(context.Context) (any, time.Duration, error) {
				return "v", tc.ttl, nil
			})
			if err != nil || out != Filled {
				t.Fatalf("DoTTL = %v, %v; want miss, nil", out, err)
			}
			// Just inside the expected lifetime: still fresh.
			clk.advance(tc.want - time.Millisecond)
			if _, ok := c.Get("k"); !ok {
				t.Fatalf("entry expired before its %v lifetime", tc.want)
			}
			// Just past it: expired.
			clk.advance(2 * time.Millisecond)
			if _, ok := c.Get("k"); ok {
				t.Fatalf("entry still fresh past its %v lifetime", tc.want)
			}
		})
	}
}

// hits+misses+stales+coalesced must equal the number of Do calls even
// when fills fail — the old code only counted misses on successful
// fills, so every error silently skewed the hit ratio. The hit path must
// also use the injected clock: under a fake clock that never advances
// mid-call, the hit histogram observes only zeros.
func TestCounterInvariantAndInjectedClock(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	c := New(Config{TTL: time.Minute, StaleFor: time.Hour, Metrics: reg, Now: clk.now})
	ctx := context.Background()
	calls := 0

	do := func(key string, fill func(context.Context) (any, error)) Outcome {
		calls++
		_, out, _ := c.Do(ctx, key, fill)
		return out
	}

	fillErr := func(context.Context) (any, error) { return nil, errors.New("backend down") }

	if out := do("bad", fillErr); out != Filled { // failed fill: still a miss
		t.Fatalf("failed fill outcome = %v, want miss", out)
	}
	if out := do("bad", fillErr); out != Filled { // errors are not cached: miss again
		t.Fatalf("second failed fill outcome = %v, want miss", out)
	}
	do("k", fillConst("v"))      // miss
	do("k", fillConst("v"))      // hit
	do("k", fillConst("v"))      // hit
	clk.advance(2 * time.Minute) // expire k within the stale window
	do("k", fillConst("v"))      // stale
	// Coalescing: a second caller joins an in-flight fill.
	enter := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(ctx, "slow", func(context.Context) (any, error) {
			close(enter)
			<-release
			return "v", nil
		})
	}()
	<-enter
	calls++ // the leader above
	calls++ // the joiner below
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(ctx, "slow", fillConst("never runs"))
	}()
	// The coalesced counter increments synchronously at join, before the
	// joiner blocks — wait for it so the leader provably finishes second.
	for deadline := time.Now().Add(5 * time.Second); reg.Counter(obs.MQCacheCoalesced).Value() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("second caller never joined the in-flight fill")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	hits := reg.Counter(obs.MQCacheHits).Value()
	misses := reg.Counter(obs.MQCacheMisses).Value()
	stales := reg.Counter(obs.MQCacheStale).Value()
	coal := reg.Counter(obs.MQCacheCoalesced).Value()
	if got := hits + misses + stales + coal; got != int64(calls) {
		t.Fatalf("hits(%d)+misses(%d)+stales(%d)+coalesced(%d) = %d, want %d calls",
			hits, misses, stales, coal, got, calls)
	}
	if misses != 4 { // bad, bad again, k, slow
		t.Fatalf("misses = %d, want 4 (failed fills must count)", misses)
	}
	h := reg.Histogram(obs.MQCacheHitSeconds)
	if h.Count() != hits+stales {
		t.Fatalf("hit histogram observed %d serves, want %d", h.Count(), hits+stales)
	}
	if sum := h.Sum(); sum != 0 {
		t.Fatalf("hit histogram sum = %v under a frozen injected clock, want 0 (wall clock leaked in)", sum)
	}
}

// A stale-while-revalidate refresh racing LRU eviction of the same key:
// churn evicts the stale entry while its background refresh is mid
// flight. Under -race this locks the store/flight interaction; the
// refresh must land (or lose) cleanly either way.
func TestSWRRefreshRacesLRUEviction(t *testing.T) {
	clk := newFakeClock()
	// One shard, two slots: churn evicts "hot" almost immediately.
	c := New(Config{MaxEntries: 2, Shards: 1, TTL: time.Minute, StaleFor: time.Hour, Now: clk.now})
	ctx := context.Background()

	for i := 0; i < 50; i++ {
		if _, _, err := c.Do(ctx, "hot", fillConst(i)); err != nil {
			t.Fatal(err)
		}
		clk.advance(2 * time.Minute) // expire "hot" into its stale window

		refreshing := make(chan struct{})
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		// Serve stale, triggering the background refresh.
		go func() {
			defer wg.Done()
			_, out, err := c.Do(ctx, "hot", func(context.Context) (any, error) {
				close(refreshing)
				<-done
				return "refreshed", nil
			})
			if err != nil || out != Stale {
				t.Errorf("iteration %d: stale Do = %v, %v", i, out, err)
			}
		}()
		// Concurrently churn the tiny store so "hot" is LRU-evicted while
		// the refresh is in flight.
		go func() {
			defer wg.Done()
			<-refreshing
			for j := 0; j < 8; j++ {
				c.Put(fmt.Sprintf("churn-%d", j), j)
			}
			close(done)
		}()
		wg.Wait()
		// The refresh goroutine is detached; wait for its put (or loss to
		// churn) to settle before the next round so iterations don't bleed
		// into each other.
		for deadline := time.Now().Add(5 * time.Second); ; {
			if _, ok := c.Get("hot"); ok {
				break
			}
			if time.Now().After(deadline) {
				// Evicted by churn after the refresh landed — legal; the
				// next iteration refills.
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}
