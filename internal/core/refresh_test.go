package core

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"starts/internal/qcache"
)

// refreshFleet is cachedFleet with a shared frozen clock (freshness
// tests' testClock) driving both the cache's expiry and the
// metasearcher's freshness decisions.
func refreshFleet(t *testing.T, ttl time.Duration) (*Metasearcher, *blockingConn, *testClock) {
	t.Helper()
	clk := newTestClock()
	ms, conn, _ := cachedFleet(t, qcache.Config{TTL: ttl, Now: clk.now})
	ms.opts.Now = clk.now
	return ms, conn, clk
}

// waitForQueries polls until the conn has served n wire fan-outs —
// needed because proactive refreshes run asynchronously.
func waitForQueries(t *testing.T, conn *blockingConn, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for conn.queries.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := conn.queries.Load(); got < n {
		t.Fatalf("conn served %d queries, want %d", got, n)
	}
}

// TestRefreshAhead pins proactive refresh: a recorded hot entry is
// re-filled only inside its expiry lead window, and the refresh pushes
// the expiry out so the next sweep leaves it alone.
func TestRefreshAhead(t *testing.T) {
	ms, conn, clk := refreshFleet(t, time.Minute)
	defer ms.Close()
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	if _, err := ms.Search(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	waitForQueries(t, conn, 1)

	// Fresh entry, expiry a full minute out: nothing within a 10s lead.
	if n := ms.RefreshAhead(10 * time.Second); n != 0 {
		t.Errorf("refreshed %d entries while far from expiry, want 0", n)
	}

	// 55s in, the entry expires within the lead: exactly one refresh.
	clk.advance(55 * time.Second)
	if n := ms.RefreshAhead(10 * time.Second); n != 1 {
		t.Errorf("refreshed %d entries inside the lead window, want 1", n)
	}
	waitForQueries(t, conn, 2)

	// The refill reset the clock: the same sweep now finds nothing.
	if n := ms.RefreshAhead(10 * time.Second); n != 0 {
		t.Errorf("refreshed %d entries after the refill, want 0", n)
	}

	// And the refreshed answer serves without another fan-out.
	if _, err := ms.Search(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if got := conn.queries.Load(); got != 2 {
		t.Errorf("post-refresh search hit the wire (%d fan-outs), want cache hit", got)
	}
}

// TestRefreshAheadNeedsCache: without a cache the sweep is a no-op.
func TestRefreshAheadNeedsCache(t *testing.T) {
	ms, _ := fleet(t)
	defer ms.Close()
	if n := ms.RefreshAhead(time.Minute); n != 0 {
		t.Errorf("cacheless refresh = %d, want 0", n)
	}
}

// TestStartWorkloadSaver pins the periodic snapshot satellite: the saver
// writes the workload on its ticker and once more on shutdown, and the
// file round-trips through LoadWorkloadFile.
func TestStartWorkloadSaver(t *testing.T) {
	ms, _, _ := refreshFleet(t, time.Minute)
	defer ms.Close()
	if _, err := ms.Search(context.Background(), rankingQuery(t, `list((body-of-text "databases"))`)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "workload.jsonl")

	ctx, cancel := context.WithCancel(context.Background())
	done := ms.StartWorkloadSaver(ctx, path, 10*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("saver did not stop")
	}

	entries, err := qcache.LoadWorkloadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("saved %d workload entries, want 1", len(entries))
	}
	if entries[0].Key == "" {
		t.Error("saved entry has no key")
	}
}

// TestStartRefresher pins the background ticker: it sweeps on its
// interval and stops when its context ends.
func TestStartRefresher(t *testing.T) {
	ms, conn, clk := refreshFleet(t, time.Minute)
	defer ms.Close()
	if _, err := ms.Search(context.Background(), rankingQuery(t, `list((body-of-text "databases"))`)); err != nil {
		t.Fatal(err)
	}
	waitForQueries(t, conn, 1)
	clk.advance(55 * time.Second) // inside the default lead (2×interval)

	ctx, cancel := context.WithCancel(context.Background())
	done := ms.StartRefresher(ctx, 10*time.Millisecond, 10*time.Second)
	waitForQueries(t, conn, 2) // a sweep refreshed the hot entry
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("refresher did not stop")
	}
}

// TestDebugHandler pins the three debug endpoints a long-running
// metasearcher exposes.
func TestDebugHandler(t *testing.T) {
	ms, _, _ := refreshFleet(t, time.Minute)
	defer ms.Close()
	if _, err := ms.Search(context.Background(), rankingQuery(t, `list((body-of-text "databases"))`)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ms.DebugHandler())
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp, sb.String()
	}

	if resp, body := get("/metrics"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, "starts_dispatch_submitted_total") {
		t.Errorf("/metrics: status %d, dispatch counters missing:\n%.400s", resp.StatusCode, body)
	}
	if resp, body := get("/debug/workload"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(resp.Header.Get("Content-Type"), "x-ndjson") ||
		!strings.Contains(body, `"key"`) {
		t.Errorf("/debug/workload: status %d content-type %q body %.200q",
			resp.StatusCode, resp.Header.Get("Content-Type"), body)
	}
	if resp, body := get("/debug/dispatch"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"source": "cs"`) {
		t.Errorf("/debug/dispatch: status %d body %.200s", resp.StatusCode, body)
	}
}
