package core

import (
	"context"
	"strings"
	"testing"

	"starts/internal/attr"
	"starts/internal/client"
	"starts/internal/lang"
	"starts/internal/meta"
)

// TestBrokerHierarchy builds a two-level metasearch hierarchy: a leaf
// broker over the three-source fleet, registered as one source of a
// top-level metasearcher alongside an extra direct source; queries flow
// through both levels.
func TestBrokerHierarchy(t *testing.T) {
	leaf, srcs := fleet(t)
	broker, err := leaf.NewBroker("campus-broker")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leaf.NewBroker("bad id"); err == nil {
		t.Error("broker with whitespace id accepted")
	}

	top := New(Options{})
	top.Add(broker)
	top.Add(client.NewLocalConn(srcs["garden"], nil)) // also reachable directly

	ctx := context.Background()
	if err := top.Harvest(ctx); err != nil {
		t.Fatalf("harvesting through the broker: %v", err)
	}

	// The broker's aggregated summary covers all leaf members.
	_, sum, ok := top.Harvested("campus-broker")
	if !ok {
		t.Fatal("broker not harvested")
	}
	leafDocs := 0
	for _, id := range leaf.SourceIDs() {
		_, s, ok := leaf.Harvested(id)
		if !ok {
			t.Fatalf("leaf %s not harvested", id)
		}
		leafDocs += s.NumDocs
	}
	if sum.NumDocs != leafDocs {
		t.Errorf("broker summary NumDocs = %d, want %d", sum.NumDocs, leafDocs)
	}
	if df := sum.DocFreq(attr.FieldBodyOfText, lang.Tag{}, "databas"); df == 0 {
		t.Error("aggregated summary lost the database vocabulary")
	}

	// A database query through the top level flows into the broker and
	// out with leaf-attributed documents.
	q := rankingQuery(t, `list((body-of-text "databases") (body-of-text "metasearch"))`)
	ans, err := top.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Documents) == 0 {
		t.Fatal("hierarchy returned nothing")
	}
	contactedBroker := false
	for _, id := range ans.Contacted {
		if id == "campus-broker" {
			contactedBroker = true
		}
	}
	if !contactedBroker {
		t.Errorf("broker not contacted: %v", ans.Contacted)
	}
	// Documents keep their original (leaf) source attribution.
	foundLeafAttribution := false
	for _, d := range ans.Documents {
		for _, s := range d.Sources {
			if s == "cs" || s == "archive" {
				foundLeafAttribution = true
			}
		}
	}
	if !foundLeafAttribution {
		t.Error("leaf attribution lost through the hierarchy")
	}
}

func TestBrokerMetadata(t *testing.T) {
	leaf, _ := fleet(t)
	broker, err := leaf.NewBroker("B")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	md, err := broker.Metadata(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if md.SourceID != "B" || !md.QueryParts.SupportsFilter() || !md.QueryParts.SupportsRanking() {
		t.Errorf("metadata = %+v", md)
	}
	if !md.SupportsField(attr.FieldAuthor) || !md.SupportsModifier(attr.ModStem) {
		t.Error("broker profile too weak")
	}
	if !md.AllowsCombination(attr.FieldDateLastModified, attr.ModGT) {
		t.Error("date comparisons missing from broker combinations")
	}
	if md.AllowsCombination(attr.FieldTitle, attr.ModGT) {
		t.Error("title > combination should be absent")
	}
	if !strings.HasPrefix(md.RankingAlgorithmID, "broker-") {
		t.Errorf("ranking algorithm id = %s", md.RankingAlgorithmID)
	}
	// The metadata round trips through SOIF (required attributes intact).
	data, err := md.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := meta.ParseMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.SourceID != "B" {
		t.Errorf("round trip id = %s", back.SourceID)
	}

	if _, err := broker.Sample(ctx); err == nil {
		t.Error("broker samples should be explicitly unsupported")
	}
}
