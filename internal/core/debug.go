package core

import (
	"encoding/json"
	"net/http"

	"starts/internal/adaptive"
	"starts/internal/qcache"
)

// DebugHandler exposes the metasearcher's operational state over HTTP,
// mirroring the server-side endpoints so a long-running metasearcher
// (e.g. startsh with -debug-addr) is inspectable too:
//
//	GET /metrics          the registry in Prometheus text format
//	GET /debug/workload   the recorded warm-start workload as JSON lines
//	                      (the same format -warm-file persists, so a
//	                      snapshot can be fed straight back to Warm)
//	GET /debug/dispatch   per-source dispatch queue stats as JSON
//	GET /debug/adaptive   the adaptive admission controller's latest
//	                      per-source decisions as JSON (empty array when
//	                      Options.Adaptive is unset)
func (m *Metasearcher) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", m.metrics.Handler())
	mux.HandleFunc("GET /debug/workload", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := qcache.SaveWorkload(w, m.Workload()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /debug/dispatch", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.DispatchStats())
	})
	mux.HandleFunc("GET /debug/adaptive", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		decisions := []adaptive.Decision{}
		if m.adaptive != nil {
			decisions = m.adaptive.Snapshot()
		}
		_ = enc.Encode(decisions)
	})
	return mux
}
