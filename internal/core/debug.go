package core

import (
	"encoding/json"
	"net/http"

	"starts/internal/adaptive"
	"starts/internal/qcache"
)

// DebugRoute is one route on the metasearcher's debug mux: a Go 1.22
// mux pattern ("GET /debug/peers") and its handler. DebugHandler mounts
// its built-in routes from a table of these; callers append their own
// (the peer tier's /debug/peers view, say) without touching this file.
type DebugRoute struct {
	Pattern string
	Handler http.Handler
}

// DebugJSON adapts a snapshot function into a debug handler serving its
// result as indented JSON — the shape every tabular debug route shares.
func DebugJSON(snapshot func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snapshot())
	})
}

// DebugHandler exposes the metasearcher's operational state over HTTP,
// mirroring the server-side endpoints so a long-running metasearcher
// (e.g. startsh with -debug-addr) is inspectable too:
//
//	GET /metrics          the registry in Prometheus text format
//	GET /debug/workload   the recorded warm-start workload as JSON lines
//	                      (the same format -warm-file persists, so a
//	                      snapshot can be fed straight back to Warm)
//	GET /debug/dispatch   per-source dispatch queue stats as JSON
//	GET /debug/adaptive   the adaptive admission controller's latest
//	                      per-source decisions as JSON (empty array when
//	                      Options.Adaptive is unset)
//
// Extra routes are mounted after the built-ins, so a caller wiring the
// distributed cache tier adds its /debug/peers view here rather than
// running a second mux.
func (m *Metasearcher) DebugHandler(extra ...DebugRoute) http.Handler {
	routes := []DebugRoute{
		{Pattern: "GET /metrics", Handler: m.metrics.Handler()},
		{Pattern: "GET /debug/workload", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			if err := qcache.SaveWorkload(w, m.Workload()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})},
		{Pattern: "GET /debug/dispatch", Handler: DebugJSON(func() any {
			return m.DispatchStats()
		})},
		{Pattern: "GET /debug/adaptive", Handler: DebugJSON(func() any {
			decisions := []adaptive.Decision{}
			if m.adaptive != nil {
				decisions = m.adaptive.Snapshot()
			}
			return decisions
		})},
	}
	mux := http.NewServeMux()
	for _, rt := range append(routes, extra...) {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	return mux
}
