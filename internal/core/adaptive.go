package core

import (
	"context"
	"sync"
	"time"

	"starts/internal/gloss"
	"starts/internal/query"
)

// SourceStats accumulates a source's observed behavior across queries —
// the "information from past searches" the paper credits SavvySearch with
// using for source selection, and the ground for avoiding sources that
// charge in latency or failures.
type SourceStats struct {
	// Queries is the number of queries sent.
	Queries int
	// Failures is the number of failed or timed-out queries.
	Failures int
	// MeanLatency is an exponentially weighted moving average of response
	// time.
	MeanLatency time.Duration
	// DocsReturned is the total number of documents received.
	DocsReturned int
}

// FailureRate returns the observed failure fraction.
func (s SourceStats) FailureRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Failures) / float64(s.Queries)
}

// statsBook tracks per-source statistics under its own lock.
type statsBook struct {
	mu sync.Mutex
	m  map[string]*SourceStats
}

func newStatsBook() *statsBook { return &statsBook{m: map[string]*SourceStats{}} }

// ewmaAlpha is the smoothing factor of the latency average.
const ewmaAlpha = 0.3

func (b *statsBook) record(id string, elapsed time.Duration, failed bool, docs int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.m[id]
	if s == nil {
		s = &SourceStats{}
		b.m[id] = s
	}
	s.Queries++
	if failed {
		s.Failures++
	}
	s.DocsReturned += docs
	if s.MeanLatency == 0 {
		s.MeanLatency = elapsed
	} else {
		s.MeanLatency = time.Duration(float64(s.MeanLatency)*(1-ewmaAlpha) + float64(elapsed)*ewmaAlpha)
	}
}

func (b *statsBook) get(id string) (SourceStats, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.m[id]
	if !ok {
		return SourceStats{}, false
	}
	return *s, true
}

// snapshot copies the whole book under one lock acquisition.
func (b *statsBook) snapshot() map[string]SourceStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]SourceStats, len(b.m))
	for id, s := range b.m {
		out[id] = *s
	}
	return out
}

// Stats returns the accumulated statistics for a source.
func (m *Metasearcher) Stats(id string) (SourceStats, bool) {
	return m.stats.get(id)
}

// SourceStatEntry is one registered source's row in a StatsSnapshot.
type SourceStatEntry struct {
	// ID is the source, in registration order.
	ID string
	// Stats is the source's accumulated past performance.
	Stats SourceStats
	// Queried reports whether any query has reached the source yet (a
	// zero Stats is ambiguous on its own).
	Queried bool
}

// StatsSnapshot returns every registered source with its statistics, in
// registration order. Unlike interleaving SourceIDs with per-ID Stats
// calls, the source list and the stats book are each captured under a
// single lock acquisition, so a concurrent Add or an in-flight fan-out
// cannot skew one row of the display against another.
func (m *Metasearcher) StatsSnapshot() []SourceStatEntry {
	m.mu.RLock()
	order := append([]string(nil), m.order...)
	m.mu.RUnlock()
	book := m.stats.snapshot()
	out := make([]SourceStatEntry, len(order))
	for i, id := range order {
		st, ok := book[id]
		out[i] = SourceStatEntry{ID: id, Stats: st, Queried: ok}
	}
	return out
}

// AdaptiveSelector wraps a content-based selector with past-performance
// penalties, in the spirit of SavvySearch (§5): a source's estimated
// goodness is discounted by its observed latency and failure rate, so the
// metasearcher drifts away from slow or flaky sources even when their
// summaries look good.
type AdaptiveSelector struct {
	// Inner supplies the content-based goodness.
	Inner gloss.Selector
	// Stats supplies past performance (typically Metasearcher.Stats).
	Stats func(id string) (SourceStats, bool)
	// LatencyHalfLife is the mean latency at which goodness is halved;
	// zero disables the latency penalty.
	LatencyHalfLife time.Duration
	// FailureWeight scales the failure-rate penalty: goodness is
	// multiplied by (1 - FailureWeight·failureRate). Zero disables it.
	FailureWeight float64
	// Broken reports whether a source's circuit breaker currently
	// refuses regular traffic (typically resilient.Breaker.Broken); nil
	// disables the penalty.
	Broken func(id string) bool
	// BrokenPenalty multiplies the goodness of broken sources, so an
	// open source sorts last without being forgotten; the zero value
	// drops its goodness to zero.
	BrokenPenalty float64
}

// NewAdaptiveSelector wraps inner with this metasearcher's statistics and
// moderate default penalties.
func (m *Metasearcher) NewAdaptiveSelector(inner gloss.Selector) *AdaptiveSelector {
	return &AdaptiveSelector{
		Inner:           inner,
		Stats:           m.Stats,
		LatencyHalfLife: 2 * time.Second,
		FailureWeight:   1,
	}
}

// Name implements gloss.Selector.
func (a *AdaptiveSelector) Name() string { return "adaptive(" + a.Inner.Name() + ")" }

// Rank implements gloss.Selector.
func (a *AdaptiveSelector) Rank(q *query.Query, sources []gloss.SourceInfo) []gloss.Ranked {
	ranked := a.Inner.Rank(q, sources)
	for i := range ranked {
		if a.Broken != nil && a.Broken(ranked[i].ID) {
			ranked[i].Goodness *= a.BrokenPenalty
		}
		st, ok := a.Stats(ranked[i].ID)
		if !ok {
			continue
		}
		penalty := 1.0
		if a.LatencyHalfLife > 0 && st.MeanLatency > 0 {
			penalty /= 1 + float64(st.MeanLatency)/float64(a.LatencyHalfLife)
		}
		if a.FailureWeight > 0 {
			f := 1 - a.FailureWeight*st.FailureRate()
			if f < 0 {
				f = 0
			}
			penalty *= f
		}
		ranked[i].Goodness *= penalty
	}
	// Re-sort after the penalties.
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0 && less(ranked[j], ranked[j-1]); j-- {
			ranked[j], ranked[j-1] = ranked[j-1], ranked[j]
		}
	}
	return ranked
}

func less(a, b gloss.Ranked) bool {
	if a.Goodness != b.Goodness {
		return a.Goodness > b.Goodness
	}
	return a.ID < b.ID
}

// AutoRefresh re-harvests expired source metadata every interval until the
// context ends, implementing the paper's "extract metadata and content
// summaries from the sources periodically". Harvest errors are sent on
// the returned channel when someone is listening and dropped otherwise.
func (m *Metasearcher) AutoRefresh(ctx context.Context, interval time.Duration) <-chan error {
	errs := make(chan error, 1)
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		defer close(errs)
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if err := m.Harvest(ctx); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
		}
	}()
	return errs
}
