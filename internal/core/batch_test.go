package core

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// scriptedBatchConn is a batch-capable conn over a real local source:
// the first QueryBatch parks until release closes (holding the single
// dispatch worker so later queries pile into one drain), and any item
// whose ranking mentions "brokenterm" fails in-band.
type scriptedBatchConn struct {
	client.Conn
	inner      client.BatchConn
	release    chan struct{}
	parkedOnce sync.Once
	parked     chan struct{}
	wireCalls  atomic.Int64
	maxItems   atomic.Int64
}

func (c *scriptedBatchConn) QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error) {
	c.wireCalls.Add(1)
	for {
		old := c.maxItems.Load()
		if int64(len(qs)) <= old || c.maxItems.CompareAndSwap(old, int64(len(qs))) {
			break
		}
	}
	var parkedNow bool
	c.parkedOnce.Do(func() { parkedNow = true })
	if parkedNow {
		close(c.parked)
		select {
		case <-c.release:
		case <-ctx.Done():
		}
	}
	results := make([]*result.Results, len(qs))
	errs := make([]error, len(qs))
	for i, q := range qs {
		if raw, err := q.Marshal(); err == nil && strings.Contains(string(raw), "brokenterm") {
			errs[i] = errTest("scripted item failure")
			continue
		}
		results[i], errs[i] = c.inner.Query(ctx, q)
	}
	return results, errs
}

type errTest string

func (e errTest) Error() string { return string(e) }

// errGate is a BreakerGate that distinguishes success records, failure
// records and probe-slot releases.
type errGate struct {
	mu       sync.Mutex
	failures int
	oks      int
	releases int
}

func (g *errGate) Allow(string) bool { return true }
func (g *errGate) Record(_ string, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err != nil {
		g.failures++
	} else {
		g.oks++
	}
}
func (g *errGate) Release(string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.releases++
}
func (g *errGate) counts() (failures, oks, releases int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failures, g.oks, g.releases
}

// TestBatchPartialFailureBreakerAccounting drives distinct concurrent
// searches into ONE multiplexed wire call at a single source and pins
// the per-wire-call breaker contract: of the two batch items that fail
// on the shared call, exactly one Records a failure (the primary fault)
// and the other Releases its admission claim; successful members still
// Record success. Run it with -race: the fan-back path touches every
// waiter's outcome concurrently.
func TestBatchPartialFailureBreakerAccounting(t *testing.T) {
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := source.New("S", eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&index.Document{
		Linkage: "http://s/1", Title: "everything",
		Body: "databases alphaterm brokenterm gammaterm crashterm",
	}); err != nil {
		t.Fatal(err)
	}
	gate := &errGate{}
	ms := New(Options{SourceConcurrency: 1, QueueDepth: 16, Breaker: gate, Timeout: 5 * time.Second})
	defer ms.Close()
	var inner client.BatchConn = client.NewLocalConn(s, nil)
	conn := &scriptedBatchConn{
		Conn:    inner,
		inner:   inner,
		release: make(chan struct{}),
		parked:  make(chan struct{}),
	}
	ms.Add(conn)
	ctx := context.Background()
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}

	// Decoy search parks the only worker inside its wire call.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := ms.Search(ctx, rankingQuery(t, `list((body-of-text "databases"))`)); err != nil {
			t.Errorf("decoy search: %v", err)
		}
	}()
	select {
	case <-conn.parked:
	case <-time.After(5 * time.Second):
		t.Fatal("decoy query never reached the conn")
	}

	// Three distinct queries pile up behind the parked worker; two of
	// them ("brokenterm", "crashterm"... only brokenterm-marked items
	// fail) — craft exactly two failing items and one success.
	terms := []string{"alphaterm brokenterm", "brokenterm gammaterm", "gammaterm"}
	wantErr := []bool{true, true, false}
	searchErrs := make([]error, len(terms))
	for i, term := range terms {
		parts := strings.Fields(term)
		expr := `list(`
		for _, p := range parts {
			expr += `(body-of-text "` + p + `") `
		}
		expr = strings.TrimSpace(expr) + `)`
		q := rankingQuery(t, expr)
		wg.Add(1)
		go func(i int, q *query.Query) {
			defer wg.Done()
			_, searchErrs[i] = ms.Search(ctx, q)
		}(i, q)
	}
	// Wait until all three sit in the source's queue, then free the
	// worker: the drain multiplexes them into one wire call.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		depth := int64(0)
		for _, st := range ms.DispatchStats() {
			if st.Source == "S" {
				depth = st.Depth
			}
		}
		if depth >= 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(conn.release)
	wg.Wait()

	if got := conn.maxItems.Load(); got != 3 {
		t.Fatalf("largest wire call carried %d items, want 3 — drain did not multiplex", got)
	}
	// A one-source fleet surfaces a failed batch item as the search's own
	// error; per-item isolation means the healthy sibling still succeeds.
	for i, err := range searchErrs {
		if wantErr[i] && (err == nil || !strings.Contains(err.Error(), "scripted item failure")) {
			t.Errorf("search %d err = %v, want scripted item failure", i, err)
		}
		if !wantErr[i] && err != nil {
			t.Errorf("search %d err = %v, want success", i, err)
		}
	}
	failures, oks, releases := gate.counts()
	// Two members of one wire call failed: ONE Records the failure, the
	// other Releases. The successful member and the decoy Record success.
	if failures != 1 {
		t.Errorf("breaker failure records = %d, want 1 (one primary fault per wire call)", failures)
	}
	if releases != 1 {
		t.Errorf("breaker releases = %d, want 1 (the non-primary failed member)", releases)
	}
	if oks != 2 {
		t.Errorf("breaker success records = %d, want 2 (decoy + healthy member)", oks)
	}
}
