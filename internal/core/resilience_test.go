package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/engine"
	"starts/internal/gloss"
	"starts/internal/index"
	"starts/internal/meta"
	"starts/internal/source"
)

// toggleConn fails harvesting (metadata + summary) while down, leaving
// queries untouched — the shape of a source whose admin endpoint broke
// but whose query endpoint still works.
type toggleConn struct {
	client.Conn
	down atomic.Bool
}

func (c *toggleConn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	if c.down.Load() {
		return nil, errors.New("metadata endpoint down")
	}
	return c.Conn.Metadata(ctx)
}

func (c *toggleConn) Summary(ctx context.Context) (*meta.ContentSummary, error) {
	if c.down.Load() {
		return nil, errors.New("summary endpoint down")
	}
	return c.Conn.Summary(ctx)
}

func TestStaleIfErrorHarvesting(t *testing.T) {
	clock := time.Date(1996, 6, 1, 0, 0, 0, 0, time.UTC)
	ms := New(Options{Now: func() time.Time { return clock }})
	eng, _ := engine.New(engine.NewVectorConfig())
	s, _ := source.New("S", eng)
	if err := s.Add(&index.Document{
		Linkage: "http://s/1", Title: "databases", Body: "distributed databases",
	}); err != nil {
		t.Fatal(err)
	}
	s.Expires = clock.Add(24 * time.Hour)
	conn := &toggleConn{Conn: client.NewLocalConn(s, nil)}
	ms.Add(conn)
	ctx := context.Background()
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}

	// Past expiry with harvesting down: the refresh fails, but the old
	// summary stays in service, stamped stale — and queries still flow.
	clock = clock.Add(48 * time.Hour)
	conn.down.Store(true)
	if err := ms.Harvest(ctx); err == nil {
		t.Fatal("strict Harvest should surface the refresh failure")
	}
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	ans, err := ms.Search(ctx, q)
	if err != nil {
		t.Fatalf("stale-if-error search failed: %v", err)
	}
	if len(ans.Documents) == 0 {
		t.Error("stale summary produced no answer")
	}
	if !reflect.DeepEqual(ans.Degraded.Stale, []string{"S"}) {
		t.Errorf("Degraded.Stale = %v, want [S]", ans.Degraded.Stale)
	}
	if oc := ans.PerSource["S"]; oc == nil || !oc.Stale || oc.Results == nil {
		t.Errorf("per-source outcome not stamped stale: %+v", oc)
	}

	// Recovery: a successful refresh clears the staleness.
	conn.down.Store(false)
	s.Expires = clock.Add(24 * time.Hour)
	ans, err = ms.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Degraded.Any() {
		t.Errorf("recovered source still degraded: %s", ans.Degraded)
	}
}

func TestSearchBudgetBoundsTotalTime(t *testing.T) {
	// Per-source timeout is generous; the budget must still cut the
	// search short.
	ms := New(Options{Timeout: 5 * time.Second, Budget: 80 * time.Millisecond})
	ms.Add(&slowConn{failingConn{id: "slow"}})
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	start := time.Now()
	_, err := ms.Search(context.Background(), q)
	elapsed := time.Since(start)
	if err == nil {
		t.Error("slow-only fleet should fail")
	}
	if elapsed > 2*time.Second {
		t.Errorf("budget did not bound the search: %v", elapsed)
	}
}

func TestSearchBudgetDegradesMixedFleet(t *testing.T) {
	ms, _ := fleet(t)
	ms.opts.Timeout = 5 * time.Second
	ms.opts.Budget = 300 * time.Millisecond
	ms.Add(&slowConn{failingConn{id: "slow"}})
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	ans, err := ms.Search(context.Background(), q)
	if err != nil {
		t.Fatalf("healthy sources should carry the answer: %v", err)
	}
	if len(ans.Documents) == 0 {
		t.Error("no documents despite healthy sources")
	}
	found := false
	for _, id := range ans.Degraded.Failed {
		if id == "slow" {
			found = true
		}
	}
	if !found {
		t.Errorf("slow source not reported failed: %s", ans.Degraded)
	}
}

// fakeGate refuses a fixed set of sources and records outcomes and
// probe-slot releases.
type fakeGate struct {
	mu       sync.Mutex
	refused  map[string]bool
	records  map[string]int
	releases map[string]int
}

func (g *fakeGate) Allow(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return !g.refused[id]
}

func (g *fakeGate) Record(id string, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.records == nil {
		g.records = map[string]int{}
	}
	g.records[id]++
}

func (g *fakeGate) Release(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.releases == nil {
		g.releases = map[string]int{}
	}
	g.releases[id]++
}

func (g *fakeGate) counts(id string) (records, releases int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.records[id], g.releases[id]
}

func TestBreakerGateSkipsSources(t *testing.T) {
	ms, _ := fleet(t)
	gate := &fakeGate{refused: map[string]bool{"cs": true}}
	ms.opts.Breaker = gate
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	ans, err := ms.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ans.Contacted {
		if id == "cs" {
			t.Error("refused source was contacted")
		}
	}
	if !reflect.DeepEqual(ans.Degraded.Skipped, []string{"cs"}) {
		t.Errorf("Degraded.Skipped = %v, want [cs]", ans.Degraded.Skipped)
	}
	oc := ans.PerSource["cs"]
	if oc == nil || oc.Err == nil || !strings.Contains(oc.Err.Error(), "circuit open") {
		t.Errorf("skipped source outcome = %+v", oc)
	}
	if len(ans.Documents) == 0 {
		t.Error("admitted sources should still answer")
	}
	gate.mu.Lock()
	defer gate.mu.Unlock()
	if gate.records["cs"] != 0 {
		t.Error("skipped source had outcomes recorded")
	}
	if len(gate.records) == 0 {
		t.Error("contacted sources not recorded to the gate")
	}
}

func TestBreakerGateAllRefusedDegradesToEmpty(t *testing.T) {
	ms, _ := fleet(t)
	ms.opts.Breaker = &fakeGate{refused: map[string]bool{"cs": true, "garden": true, "archive": true}}
	// A term no source matches: every source is eligible, all are refused.
	q := rankingQuery(t, `list((body-of-text "xylophone"))`)
	ans, err := ms.Search(context.Background(), q)
	if err != nil {
		t.Fatalf("all-refused fleet must degrade, not error: %v", err)
	}
	if len(ans.Documents) != 0 || len(ans.Contacted) != 0 {
		t.Errorf("answer = %d docs, contacted %v", len(ans.Documents), ans.Contacted)
	}
	if !reflect.DeepEqual(ans.Degraded.Skipped, []string{"archive", "cs", "garden"}) {
		t.Errorf("Degraded.Skipped = %v", ans.Degraded.Skipped)
	}
}

func TestHarvestErrorAggregationDeterministic(t *testing.T) {
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	var msgs []string
	for i := 0; i < 5; i++ {
		ms := New(Options{})
		for _, id := range []string{"zeta", "alpha", "mid"} {
			ms.Add(&brokenHarvestConn{failingConn{id: id}})
		}
		_, err := ms.Search(context.Background(), q)
		if err == nil {
			t.Fatal("unharvestable fleet should fail")
		}
		for _, id := range []string{"alpha", "mid", "zeta"} {
			if !strings.Contains(err.Error(), id) {
				t.Fatalf("aggregate error misses %s: %v", id, err)
			}
		}
		msgs = append(msgs, err.Error())
	}
	for _, m := range msgs[1:] {
		if m != msgs[0] {
			t.Fatalf("aggregate error not deterministic:\n%s\nvs\n%s", msgs[0], m)
		}
	}
	if a, z := strings.Index(msgs[0], "alpha"), strings.Index(msgs[0], "zeta"); a > z {
		t.Errorf("errors not sorted by source ID: %s", msgs[0])
	}
}

func TestAllFailedErrorAggregationDeterministic(t *testing.T) {
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	var msgs []string
	for i := 0; i < 5; i++ {
		ms := New(Options{})
		ms.Add(&failingConn{id: "b2"})
		ms.Add(&failingConn{id: "b1"})
		_, err := ms.Search(context.Background(), q)
		if err == nil {
			t.Fatal("all-failing fleet should fail")
		}
		msgs = append(msgs, err.Error())
	}
	for _, m := range msgs[1:] {
		if m != msgs[0] {
			t.Fatalf("aggregate error not deterministic:\n%s\nvs\n%s", msgs[0], m)
		}
	}
	if i1, i2 := strings.Index(msgs[0], "b1"), strings.Index(msgs[0], "b2"); i1 < 0 || i2 < 0 || i1 > i2 {
		t.Errorf("per-source errors missing or unsorted: %s", msgs[0])
	}
}

func TestAdaptiveSelectorBrokenPenalty(t *testing.T) {
	sel := &AdaptiveSelector{
		Inner:  fixedSelector{"bad": 100, "ok": 10},
		Stats:  func(string) (SourceStats, bool) { return SourceStats{}, false },
		Broken: func(id string) bool { return id == "bad" },
	}
	q := rankingQuery(t, `list((body-of-text "x"))`)
	ranked := sel.Rank(q, []gloss.SourceInfo{{ID: "bad"}, {ID: "ok"}})
	if ranked[0].ID != "ok" {
		t.Errorf("broken source not demoted: %v", ranked)
	}
	for _, r := range ranked {
		if r.ID == "bad" && r.Goodness != 0 {
			t.Errorf("zero BrokenPenalty should zero goodness, got %g", r.Goodness)
		}
	}
	// A partial penalty discounts without zeroing.
	sel.BrokenPenalty = 0.5
	ranked = sel.Rank(q, []gloss.SourceInfo{{ID: "bad"}, {ID: "ok"}})
	for _, r := range ranked {
		if r.ID == "bad" && r.Goodness != 50 {
			t.Errorf("BrokenPenalty 0.5 gave goodness %g, want 50", r.Goodness)
		}
	}
}

func TestDegradationReport(t *testing.T) {
	var d Degradation
	if d.Any() || d.String() != "none" {
		t.Errorf("zero Degradation = %v %q", d.Any(), d.String())
	}
	d.Failed = []string{"x"}
	if !d.Any() || !strings.Contains(d.String(), "failed=[x]") {
		t.Errorf("Degradation = %v %q", d.Any(), d.String())
	}
}
