package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/dispatch"
	"starts/internal/obs"
	"starts/internal/query"
	"starts/internal/result"
)

// gateConn harvests like failingConn but parks every Query until release
// closes, counting wire calls — the knob that lets tests hold a batch
// in flight while more searches pile onto it.
type gateConn struct {
	failingConn
	calls   atomic.Int64
	release chan struct{}
}

func (g *gateConn) Query(ctx context.Context, _ *query.Query) (*result.Results, error) {
	g.calls.Add(1)
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &result.Results{}, nil
}

func dispatchStat(t *testing.T, ms *Metasearcher, source string) dispatch.QueueStat {
	t.Helper()
	for _, st := range ms.DispatchStats() {
		if st.Source == source {
			return st
		}
	}
	return dispatch.QueueStat{}
}

// waitForStat polls the source's dispatch stats until cond holds,
// failing the test after two seconds.
func waitForStat(t *testing.T, ms *Metasearcher, source string, cond func(dispatch.QueueStat) bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond(dispatchStat(t, ms, source)) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("dispatch stats never reached the expected state: %+v", dispatchStat(t, ms, source))
}

// TestCrossSearchCoalescing pins the headline dispatch win: concurrent
// searches sending the same translated sub-query to the same source
// share ONE wire call, and each still gets a complete answer.
func TestCrossSearchCoalescing(t *testing.T) {
	ms := New(Options{Timeout: 5 * time.Second})
	defer ms.Close()
	g := &gateConn{failingConn: failingConn{id: "g"}, release: make(chan struct{})}
	ms.Add(g)
	if err := ms.Harvest(context.Background()); err != nil {
		t.Fatal(err)
	}
	base := dispatchStat(t, ms, "g")

	const searches = 4
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	var wg sync.WaitGroup
	errs := make([]error, searches)
	for i := 0; i < searches; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = ms.Search(context.Background(), q)
		}()
	}
	// All four submissions land on g's queue — one leads, three join the
	// pending batch — while the single wire call sits parked on the gate.
	waitForStat(t, ms, "g", func(st dispatch.QueueStat) bool {
		return st.Submitted-base.Submitted == searches
	})
	close(g.release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}
	if got := g.calls.Load(); got != 1 {
		t.Errorf("wire calls = %d, want 1 for %d identical searches", got, searches)
	}
	if st := dispatchStat(t, ms, "g"); st.Batched-base.Batched != searches-1 {
		t.Errorf("batched = %d, want %d", st.Batched-base.Batched, searches-1)
	}
}

// TestQueueFullSurfacesInOutcome pins shedding end to end: with a
// one-worker, one-slot queue saturated by gated searches, an extra
// distinct search is refused with ErrQueueFull in its per-source
// outcome instead of waiting.
func TestQueueFullSurfacesInOutcome(t *testing.T) {
	ms := New(Options{
		Timeout:           5 * time.Second,
		SourceConcurrency: 1,
		QueueDepth:        1,
	})
	defer ms.Close()
	g := &gateConn{failingConn: failingConn{id: "g"}, release: make(chan struct{})}
	ms.Add(g)
	if err := ms.Harvest(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Two distinct queries: one occupies the single worker, one fills the
	// single queue slot.
	var wg sync.WaitGroup
	for _, text := range []string{"databases", "metasearch"} {
		text := text
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = ms.Search(context.Background(), ms.mustQuery(t, text))
		}()
	}
	waitForStat(t, ms, "g", func(st dispatch.QueueStat) bool {
		return st.Inflight == 1 && st.Depth == 1
	})

	ans, err := ms.Search(context.Background(), ms.mustQuery(t, "ranking"))
	close(g.release)
	wg.Wait()
	if err != nil {
		// The only source shed, so Search reports total failure — that
		// error must still be the typed one.
		if !errors.Is(err, dispatch.ErrQueueFull) {
			t.Fatalf("search err = %v, want ErrQueueFull", err)
		}
	} else if oc := ans.PerSource["g"]; oc == nil || !errors.Is(oc.Err, dispatch.ErrQueueFull) {
		t.Fatalf("outcome = %+v, want ErrQueueFull", oc)
	}
	if st := dispatchStat(t, ms, "g"); st.QueueFull == 0 {
		t.Error("QueueFull counter never moved")
	}
}

// TestBreakerReleasedWhenCallSkipsWire pins the probe-slot bookkeeping
// between the breaker and the dispatch layer: a breaker-admitted call
// that never produces its own wire outcome — it coalesced onto another
// search's batch, or was shed with ErrQueueFull — must Release its claim
// instead of Recording, so a half-open circuit cannot get stuck waiting
// on feedback that will never come.
func TestBreakerReleasedWhenCallSkipsWire(t *testing.T) {
	ms := New(Options{Timeout: 5 * time.Second})
	defer ms.Close()
	g := &gateConn{failingConn: failingConn{id: "g"}, release: make(chan struct{})}
	ms.Add(g)
	if err := ms.Harvest(context.Background()); err != nil {
		t.Fatal(err)
	}
	gate := &fakeGate{}
	ms.opts.Breaker = gate
	base := dispatchStat(t, ms, "g")

	const searches = 4
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	var wg sync.WaitGroup
	for i := 0; i < searches; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ms.Search(context.Background(), q); err != nil {
				t.Errorf("search: %v", err)
			}
		}()
	}
	waitForStat(t, ms, "g", func(st dispatch.QueueStat) bool {
		return st.Batched-base.Batched == searches-1
	})
	close(g.release)
	wg.Wait()

	// One leader observed the shared wire call; the three joiners must
	// have released their claims, not recorded nor vanished.
	if rec, rel := gate.counts("g"); rec != 1 || rel != searches-1 {
		t.Errorf("records/releases = %d/%d, want 1/%d", rec, rel, searches-1)
	}
}

// mustQuery builds a one-term ranking query inline; hung off the
// metasearcher only to keep call sites short.
func (m *Metasearcher) mustQuery(t *testing.T, term string) *query.Query {
	t.Helper()
	return rankingQuery(t, `list((body-of-text "`+term+`"))`)
}

// TestDispatchInflightBounded pins the acceptance gauge through the full
// stack: distinct concurrent searches against a SourceConcurrency-2
// source never push starts_dispatch_inflight past 2.
func TestDispatchInflightBounded(t *testing.T) {
	reg := obs.NewRegistry()
	ms := New(Options{
		Timeout:           5 * time.Second,
		SourceConcurrency: 2,
		Metrics:           reg,
	})
	defer ms.Close()
	gauge := reg.Gauge(obs.L(obs.MDispatchInflight, "source", "s"))
	var peak atomic.Int64
	ms.Add(&samplingConn{failingConn: failingConn{id: "s"}, gauge: gauge, peak: &peak})
	if err := ms.Harvest(context.Background()); err != nil {
		t.Fatal(err)
	}

	terms := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	var wg sync.WaitGroup
	for _, term := range terms {
		term := term
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ms.Search(context.Background(), ms.mustQuery(t, term)); err != nil {
				t.Errorf("search %q: %v", term, err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p < 1 || p > 2 {
		t.Errorf("peak inflight = %d, want within [1, 2]", p)
	}
}

// samplingConn records the inflight gauge's peak from inside the wire
// call, where the gauge must already count this call.
type samplingConn struct {
	failingConn
	gauge *obs.Gauge
	peak  *atomic.Int64
}

func (s *samplingConn) Query(context.Context, *query.Query) (*result.Results, error) {
	for {
		v := s.gauge.Value()
		p := s.peak.Load()
		if v <= p || s.peak.CompareAndSwap(p, v) {
			break
		}
	}
	time.Sleep(2 * time.Millisecond)
	return &result.Results{}, nil
}
