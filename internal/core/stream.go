package core

import (
	"context"
	"sync"
	"time"

	"starts/internal/obs"
	"starts/internal/query"
	"starts/internal/result"
)

// StreamEvent is one step of a streamed search. Events arrive in rank
// order: Docs are the documents whose final merged position just became
// certain (Rank is the position of the first of them), so concatenating
// every event's Docs reproduces the final answer's Documents exactly.
//
// Per-source events (SourceID set) fire as each contacted source
// completes, whether or not they stabilized new documents, and carry
// that source's Outcome plus a snapshot of the degradation accumulated
// so far. The terminal event has Final set to the complete merged
// answer; its Docs are the remainder the incremental merger could not
// prove stable early. A search served from the query cache produces a
// single terminal event carrying everything at once.
//
// Streamed documents alias the final answer's pointers: duplicate
// attributions (Sources) and promoted scores are completed in place by
// the batch merge at stream end, so an early emission may briefly show a
// partial Sources list that the terminal event's Final answer has
// completed.
type StreamEvent struct {
	// Docs are newly rank-stable documents, best first; may be empty on
	// per-source events that stabilized nothing.
	Docs []*result.Document
	// Rank is the final answer position of Docs[0] (0-based).
	Rank int
	// SourceID names the source whose completion produced this event;
	// empty on the terminal event.
	SourceID string
	// Outcome is the completed source's outcome (per-source events only).
	Outcome *SourceOutcome
	// Degraded is a snapshot of the degradation known so far.
	Degraded Degradation
	// Final is the complete merged answer; set only on the terminal
	// event of a successful stream.
	Final *Answer
}

// StreamSink receives stream events. It is called synchronously from
// the search's completion path — one call at a time, never concurrently
// — so a slow sink back-pressures emission (usually what a streaming
// response wants). Returning an error stops further emission; the
// search itself still runs to completion (and fills the query cache)
// and SearchStream returns the full answer. A sink must not call back
// into the Metasearcher.
type StreamSink func(StreamEvent) error

// SearchStream is Search with incremental delivery: events are emitted
// as merged rank positions become certain — per-source results feed an
// incremental merger at each fan-out completion instead of a barrier —
// and the final answer is returned exactly as Search would have
// returned it, bit-identical to the batch path (the stream end runs the
// ordinary batch merge over the same inputs).
//
// How early documents flow depends on the merge strategy: round-robin
// streams most eagerly, raw-score and scaled-score emit what the
// pending sources' declared ScoreRanges can no longer displace, and
// strategies whose scores depend on the full input set (term-stats,
// calibrated) deliver everything in the terminal event. Either way the
// qcache contract is unchanged: the fully-merged answer is cached at
// stream end, and cache hits, stale serves and coalesced followers
// replay their shared answer as one terminal event.
func (m *Metasearcher) SearchStream(ctx context.Context, q *query.Query, sink StreamSink, sopts ...SearchOption) (*Answer, error) {
	return m.searchStream(ctx, q, sink, sopts...)
}

// emitter serializes delivery to one sink and records the stream
// metrics. A nil *emitter is valid and inert, so the batch Search path
// costs one nil check. The emitter is disarmed when its search returns:
// a background refresh triggered by this search can never write to the
// caller's sink.
type emitter struct {
	mu       sync.Mutex
	sink     StreamSink
	dead     bool
	start    time.Time
	now      func() time.Time
	metrics  *obs.Registry
	gotFirst bool
}

func (m *Metasearcher) newEmitter(sink StreamSink, opts Options) *emitter {
	return &emitter{sink: sink, start: opts.Now(), now: opts.Now, metrics: m.metrics}
}

// emit delivers one event unless the emitter is disarmed or the sink
// already failed.
func (e *emitter) emit(ev StreamEvent) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return
	}
	if len(ev.Docs) > 0 && !e.gotFirst {
		e.gotFirst = true
		e.metrics.Histogram(obs.MStreamFirstResultSeconds).Observe(e.now().Sub(e.start))
	}
	if ev.Final != nil {
		e.metrics.Histogram(obs.MStreamFinalSeconds).Observe(e.now().Sub(e.start))
	} else if len(ev.Docs) > 0 {
		e.metrics.Counter(obs.MStreamEarlyDocs).Add(int64(len(ev.Docs)))
	}
	if err := e.sink(ev); err != nil {
		e.dead = true
		e.metrics.Counter(obs.MStreamSinkErrors).Inc()
	}
}

// replay delivers a cache-served answer as one terminal event.
func (e *emitter) replay(ans *Answer) {
	if e == nil {
		return
	}
	e.metrics.Counter(obs.MStreamReplays).Inc()
	e.emit(StreamEvent{Docs: ans.Documents, Degraded: ans.Degraded.snapshot(), Final: ans})
}

// disarm permanently stops emission. Called when the owning search
// returns, so nothing later (a stale-while-revalidate refresh sharing
// this query's fill, say) can reach a sink whose caller has moved on.
func (e *emitter) disarm() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.dead = true
	e.mu.Unlock()
}

// emitterKey carries the search's emitter through the query cache to
// its fill: qcache.DoTTL runs a leading (synchronous) fill on the
// caller's own context, so the token reaches run and the leader
// streams; background refreshes run on a detached context, find no
// token, and stay silent.
type emitterKey struct{}

func withEmitter(ctx context.Context, em *emitter) context.Context {
	return context.WithValue(ctx, emitterKey{}, em)
}

func emitterFrom(ctx context.Context) *emitter {
	em, _ := ctx.Value(emitterKey{}).(*emitter)
	return em
}

// snapshot returns a copy of d whose lists do not alias the answer's
// (which later completions keep appending to).
func (d Degradation) snapshot() Degradation {
	d.Skipped = append([]string(nil), d.Skipped...)
	d.Stale = append([]string(nil), d.Stale...)
	d.Failed = append([]string(nil), d.Failed...)
	d.HarvestFailed = append([]string(nil), d.HarvestFailed...)
	return d
}
