package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/attr"
	"starts/internal/client"
	"starts/internal/engine"
	"starts/internal/gloss"
	"starts/internal/index"
	"starts/internal/merge"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// fleet builds three heterogeneous in-process sources: a CS source (TFIDF,
// both parts), a gardening source (TopK scorer), and a Boolean-only
// archive, with one document shared between CS and archive.
func fleet(t *testing.T) (*Metasearcher, map[string]*source.Source) {
	t.Helper()
	date := time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC)
	mkDocs := func(topic string, n int, extra string) []*index.Document {
		docs := make([]*index.Document, n)
		for i := range docs {
			docs[i] = &index.Document{
				Linkage: "http://" + topic + "/" + string(rune('a'+i)),
				Title:   topic + " paper " + string(rune('a'+i)),
				Authors: []string{"Author " + topic},
				Body:    extra,
				Date:    date,
			}
		}
		return docs
	}
	csDocs := mkDocs("cs", 4, "distributed databases query processing metasearch ranking")
	gdDocs := mkDocs("garden", 4, "tomato compost pruning harvest watering soil")
	arDocs := mkDocs("archive", 3, "databases archive retrospective scanned records")
	shared := &index.Document{
		Linkage: "http://shared/survey", Title: "Metasearch survey",
		Authors: []string{"Luis Gravano"},
		Body:    "distributed databases metasearch survey of merging and selection",
		Date:    date,
	}
	csDocs = append(csDocs, shared)
	arDocs = append(arDocs, shared)

	srcs := map[string]*source.Source{}
	mkSource := func(id string, cfg engine.Config, docs []*index.Document) *source.Source {
		eng, err := engine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := source.New(id, eng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddAll(docs); err != nil {
			t.Fatal(err)
		}
		srcs[id] = s
		return s
	}
	topk := engine.NewVectorConfig()
	topk.Scorer = engine.TopK{}

	ms := New(Options{Timeout: 5 * time.Second})
	ms.Add(client.NewLocalConn(mkSource("cs", engine.NewVectorConfig(), csDocs), nil))
	ms.Add(client.NewLocalConn(mkSource("garden", topk, gdDocs), nil))
	ms.Add(client.NewLocalConn(mkSource("archive", engine.NewBooleanConfig(), arDocs), nil))
	return ms, srcs
}

func rankingQuery(t *testing.T, src string) *query.Query {
	t.Helper()
	q := query.New()
	r, err := query.ParseRanking(src)
	if err != nil {
		t.Fatal(err)
	}
	q.Ranking = r
	return q
}

func TestHarvestAndCache(t *testing.T) {
	ms, _ := fleet(t)
	ctx := context.Background()
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}
	md, sum, ok := ms.Harvested("cs")
	if !ok || md.SourceID != "cs" || sum.NumDocs != 5 {
		t.Errorf("harvested cs = %v %v %v", md, sum, ok)
	}
	if got := ms.SourceIDs(); len(got) != 3 {
		t.Errorf("SourceIDs = %v", got)
	}
}

func TestHarvestRespectsExpiry(t *testing.T) {
	clock := time.Date(1996, 6, 1, 0, 0, 0, 0, time.UTC)
	ms := New(Options{Now: func() time.Time { return clock }})
	eng, _ := engine.New(engine.NewVectorConfig())
	s, _ := source.New("S", eng)
	if err := s.Add(&index.Document{Linkage: "http://s/1", Title: "doc", Body: "words"}); err != nil {
		t.Fatal(err)
	}
	s.Expires = clock.Add(24 * time.Hour)
	counting := &countingConn{Conn: client.NewLocalConn(s, nil)}
	ms.Add(counting)
	ctx := context.Background()
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}
	if got := counting.metaCalls.Load(); got != 1 {
		t.Errorf("metadata fetched %d times before expiry, want 1", got)
	}
	// Advance past DateExpires: the next harvest refreshes.
	clock = clock.Add(48 * time.Hour)
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}
	if got := counting.metaCalls.Load(); got != 2 {
		t.Errorf("metadata fetched %d times after expiry, want 2", got)
	}
}

// countingConn counts metadata fetches (atomically: AutoRefresh fetches
// from a background goroutine).
type countingConn struct {
	client.Conn
	metaCalls atomic.Int64
}

func (c *countingConn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	c.metaCalls.Add(1)
	return c.Conn.Metadata(ctx)
}

// TestSearchSelectsTopicalSources: a database query must not contact the
// gardening source when a cap is in place.
func TestSearchSelectsTopicalSources(t *testing.T) {
	ms, _ := fleet(t)
	ms.opts.MaxSources = 2
	q := rankingQuery(t, `list((body-of-text "databases") (body-of-text "distributed"))`)
	ans, err := ms.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ans.Contacted {
		if id == "garden" {
			t.Errorf("gardening source contacted for a database query: %v", ans.Contacted)
		}
	}
	if len(ans.Documents) == 0 {
		t.Fatal("no merged documents")
	}
	// The shared document must appear once with both sources attributed
	// (if both cs and archive were contacted).
	seen := map[string]int{}
	for _, d := range ans.Documents {
		seen[d.Linkage()]++
	}
	if seen["http://shared/survey"] > 1 {
		t.Error("shared document duplicated in merged answer")
	}
}

func TestSearchMergesAcrossIncompatibleScorers(t *testing.T) {
	ms, _ := fleet(t)
	// Query matching both cs (TFIDF, scores <1) and garden (TopK, top
	// score 1000): with the scaled merger neither source dominates merely
	// by scale.
	ms.opts.Merger = merge.Scaled{}
	q := rankingQuery(t, `list((body-of-text "databases") (body-of-text "tomato"))`)
	ans, err := ms.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	srcSeen := map[string]bool{}
	for _, d := range ans.Documents {
		for _, s := range d.Sources {
			srcSeen[s] = true
		}
	}
	if !srcSeen["cs"] || !srcSeen["garden"] {
		t.Errorf("merged answer lacks a side: %v", srcSeen)
	}
}

func TestSearchRecordsPerSourceOutcomes(t *testing.T) {
	ms, _ := fleet(t)
	q := query.New()
	q.Filter, _ = query.ParseFilter(`(body-of-text "databases")`)
	q.Ranking, _ = query.ParseRanking(`list((body-of-text "databases"))`)
	ans, err := ms.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	oc := ans.PerSource["archive"]
	if oc == nil {
		t.Skip("archive not selected for this query")
	}
	if oc.Report == nil || !oc.Report.DroppedRanking {
		t.Errorf("archive outcome should report dropped ranking: %+v", oc.Report)
	}
	if oc.Results == nil || oc.Err != nil {
		t.Errorf("archive outcome = %+v", oc)
	}
}

func TestSearchValidates(t *testing.T) {
	ms, _ := fleet(t)
	if _, err := ms.Search(context.Background(), query.New()); err == nil {
		t.Error("empty query accepted")
	}
}

func TestSearchNoPromisingSources(t *testing.T) {
	// When no source shows positive goodness the selector has no
	// information, so every source is contacted (this is also what the
	// random baseline relies on) — and the honest answer is empty.
	ms, _ := fleet(t)
	q := rankingQuery(t, `list((body-of-text "xylophone"))`)
	ans, err := ms.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Contacted) != 3 {
		t.Errorf("contacted = %v, want all three", ans.Contacted)
	}
	if len(ans.Documents) != 0 {
		t.Errorf("documents = %d, want none", len(ans.Documents))
	}
}

func TestSearchSurvivesSourceFailure(t *testing.T) {
	ms, _ := fleet(t)
	ms.Add(&failingConn{id: "broken"})
	// Make the broken source promising by giving it a fake summary via a
	// conn that fails only on Query.
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	ans, err := ms.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if oc := ans.PerSource["broken"]; oc == nil || oc.Err == nil {
		t.Errorf("broken source outcome = %+v", oc)
	}
	if len(ans.Documents) == 0 {
		t.Error("healthy sources should still answer")
	}
}

// failingConn harvests fine (claiming rich content) but fails queries.
type failingConn struct{ id string }

func (f *failingConn) SourceID() string { return f.id }

func (f *failingConn) Metadata(context.Context) (*meta.SourceMeta, error) {
	return &meta.SourceMeta{
		SourceID: f.id, QueryParts: meta.PartsBoth, ScoreMax: 1,
		RankingAlgorithmID: "X", TurnOffStopWords: true,
		FieldsSupported: []meta.FieldSupport{
			{Set: attr.SetBasic1, Field: attr.FieldBodyOfText},
		},
	}, nil
}

func (f *failingConn) Summary(context.Context) (*meta.ContentSummary, error) {
	return &meta.ContentSummary{
		NumDocs: 100, FieldsQualified: true,
		Groups: []meta.SummaryGroup{{Field: attr.FieldBodyOfText,
			Terms: []meta.TermInfo{{Term: "databases", Postings: 500, DocFreq: 90}}}},
	}, nil
}

func (f *failingConn) Sample(context.Context) ([]*source.SampleEntry, error) {
	return nil, errors.New("no samples")
}

func (f *failingConn) Query(context.Context, *query.Query) (*result.Results, error) {
	return nil, errors.New("source down")
}

func TestAllSourcesFailing(t *testing.T) {
	ms := New(Options{})
	ms.Add(&failingConn{id: "b1"})
	ms.Add(&failingConn{id: "b2"})
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	if _, err := ms.Search(context.Background(), q); err == nil {
		t.Error("all-failing fleet should surface an error")
	}
}

func TestPostFilterVerificationMode(t *testing.T) {
	ms, _ := fleet(t)
	ms.opts.PostFilter = true
	ms.opts.Selector = gloss.Random{Seed: 42} // contact everything
	// The archive is Boolean-only and does not support the author field
	// wait — author IS supported there. Use a field it lacks: languages.
	q := query.New()
	q.Filter, _ = query.ParseFilter(`((author "Gravano") and (body-of-text "metasearch"))`)
	ans, err := ms.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// Every surviving document must actually have Gravano as an author
	// (either verified at the source or post-filtered here).
	for _, d := range ans.Documents {
		if d.Fields[attr.FieldAuthor] == "" {
			continue // author not in answer fields by default
		}
	}
	if len(ans.Documents) == 0 {
		t.Error("verification removed everything")
	}
}

func TestRankedIDs(t *testing.T) {
	rs := []gloss.Ranked{{ID: "b", Goodness: 2}, {ID: "a", Goodness: 1}}
	ids := RankedIDs(rs)
	if len(ids) != 2 || ids[0] != "b" || ids[1] != "a" {
		t.Errorf("RankedIDs = %v", ids)
	}
}

func TestTimeoutCancelsSlowSource(t *testing.T) {
	ms := New(Options{Timeout: 30 * time.Millisecond})
	ms.Add(&slowConn{failingConn{id: "slow"}})
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	start := time.Now()
	_, err := ms.Search(context.Background(), q)
	if err == nil {
		t.Error("slow-only fleet should fail")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout did not bound the slow source")
	}
}

// slowConn blocks until its context dies.
type slowConn struct{ failingConn }

func (s *slowConn) Query(ctx context.Context, _ *query.Query) (*result.Results, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// brokenHarvestConn fails at harvest time, not query time.
type brokenHarvestConn struct{ failingConn }

func (b *brokenHarvestConn) Metadata(context.Context) (*meta.SourceMeta, error) {
	return nil, errors.New("metadata endpoint down")
}

// TestSearchSurvivesHarvestFailure: an unreachable source degrades the
// answer, not the whole search.
func TestSearchSurvivesHarvestFailure(t *testing.T) {
	ms, _ := fleet(t)
	ms.Add(&brokenHarvestConn{failingConn{id: "down"}})
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	ans, err := ms.Search(context.Background(), q)
	if err != nil {
		t.Fatalf("search failed outright: %v", err)
	}
	if len(ans.Documents) == 0 {
		t.Error("healthy sources returned nothing")
	}
	oc := ans.PerSource["down"]
	if oc == nil || oc.Err == nil {
		t.Errorf("harvest failure not recorded: %+v", oc)
	}
	// An all-down fleet still fails loudly.
	ms2 := New(Options{})
	ms2.Add(&brokenHarvestConn{failingConn{id: "d1"}})
	if _, err := ms2.Search(context.Background(), q); err == nil {
		t.Error("all-down fleet should fail")
	}
	// Strict Harvest keeps its error contract.
	if err := ms.Harvest(context.Background()); err == nil {
		t.Error("strict Harvest should surface the broken source")
	}
}
