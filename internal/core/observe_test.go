package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/faulty"
	"starts/internal/gloss"
	"starts/internal/merge"
	"starts/internal/obs"
	"starts/internal/resilient"
)

// TestSearchTraceFanOut drives a traced search across the three healthy
// fleet sources plus one that fails at query time, and checks the span
// tree: the five pipeline stages at the top level, per-source children
// under harvest/translate/fanout, and the failure annotated on the
// broken source's query span.
func TestSearchTraceFanOut(t *testing.T) {
	ms, _ := fleet(t)
	ms.Add(&failingConn{id: "broken"})
	q := rankingQuery(t, `list((body-of-text "databases"))`)

	var tr obs.Trace
	ans, err := ms.Search(context.Background(), q, WithTrace(&tr))
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trace != &tr {
		t.Error("Answer.Trace should be the caller's trace")
	}
	ti := tr.Snapshot()
	if ti.Duration <= 0 {
		t.Error("trace should be finished")
	}

	var stages []string
	for _, sp := range ti.Spans {
		stages = append(stages, sp.Name)
	}
	want := []string{"harvest", "select", "translate", "fanout", "merge"}
	if strings.Join(stages, " ") != strings.Join(want, " ") {
		t.Fatalf("stages = %v, want %v", stages, want)
	}

	// All four sources were harvested; selection drops the off-topic
	// garden source, so translate and fan-out carry the three promising
	// ones. Every per-source span lives under its stage, not at the top
	// level.
	for stage, want := range map[string]struct {
		prefix string
		n      int
	}{
		"harvest":   {"harvest ", 4},
		"translate": {"translate ", 3},
		"fanout":    {"query ", 3},
	} {
		sp := ti.Find(stage)
		if len(sp.Children) != want.n {
			t.Errorf("%s children = %d, want %d: %+v", stage, len(sp.Children), want.n, sp.Children)
		}
		for _, c := range sp.Children {
			if !strings.HasPrefix(c.Name, want.prefix) || c.Source == "" {
				t.Errorf("%s child = %q [%s]", stage, c.Name, c.Source)
			}
		}
	}
	// 5 stages + 4 harvests + 3 translations + 3 queries + 3 dispatch
	// children (one per query span, recording the queueing side of the
	// wire call).
	if got := ti.SpanCount(); got != 18 {
		t.Errorf("SpanCount = %d, want 18", got)
	}
	for _, id := range []string{"cs", "archive", "broken"} {
		qs := ti.Find("query " + id)
		if qs == nil || len(qs.Children) != 1 || qs.Children[0].Name != "dispatch" {
			t.Errorf("query %s children = %+v, want one dispatch span", id, qs)
			continue
		}
		if co, ok := qs.Children[0].Attr("coalesced"); !ok || co != "false" {
			t.Errorf("query %s dispatch coalesced = %q %v, want \"false\"", id, co, ok)
		}
	}

	if sp := ti.Find("query broken"); sp == nil || !strings.Contains(sp.Err, "source down") {
		t.Errorf("broken query span = %+v", sp)
	}
	if sp := ti.Find("query cs"); sp == nil || sp.Err != "" {
		t.Errorf("cs query span = %+v", sp)
	} else if docs, ok := sp.Attr("docs"); !ok || docs == "0" {
		t.Errorf("cs docs annotation = %q %v", docs, ok)
	}
	if sel := ti.Find("select"); sel == nil {
		t.Error("select span missing")
	} else if picked, _ := sel.Attr("picked"); picked != "3" {
		t.Errorf("select picked = %q", picked)
	}
	if mg := ti.Find("merge"); mg == nil {
		t.Error("merge span missing")
	} else if s, _ := mg.Attr("strategy"); s == "" {
		t.Error("merge strategy annotation missing")
	}

	// The same trace can be reused for the next search; the second run
	// hits the harvest cache, so the harvest stage has no children.
	if _, err := ms.Search(context.Background(), q, WithTrace(&tr)); err != nil {
		t.Fatal(err)
	}
	if got := tr.Snapshot().SpanCount(); got != 14 {
		t.Errorf("reused trace SpanCount = %d, want 14", got)
	}
}

// TestSearchRecordsMetrics checks the registry side of a search: search
// and per-source counters, latency histogram population, and harvest
// cache hit/miss accounting across repeated searches.
func TestSearchRecordsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	fleetMS, srcs := fleet(t)
	_ = fleetMS // fleet only provides the corpus; this test wants its own registry
	ms := New(Options{Timeout: 5 * time.Second, Metrics: reg})
	for _, id := range []string{"cs", "garden", "archive"} {
		ms.Add(client.NewLocalConn(srcs[id], nil))
	}
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := ms.Search(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("starts_searches_total").Value(); got != 2 {
		t.Errorf("searches_total = %d", got)
	}
	if got := reg.Gauge("starts_sources_registered").Value(); got != 3 {
		t.Errorf("sources_registered = %d", got)
	}
	// First search harvests all three sources (misses); the second runs
	// entirely off the cache (hits).
	if got := reg.Counter("starts_harvest_cache_misses_total").Value(); got != 3 {
		t.Errorf("cache misses = %d", got)
	}
	if got := reg.Counter("starts_harvest_cache_hits_total").Value(); got != 3 {
		t.Errorf("cache hits = %d", got)
	}
	h := reg.Histogram("starts_search_seconds")
	if h.Count() != 2 {
		t.Errorf("search_seconds count = %d", h.Count())
	}
	var bucketed int64
	for _, n := range h.BucketCounts() {
		bucketed += n
	}
	if bucketed != 2 {
		t.Errorf("search_seconds bucket counts sum to %d: %v", bucketed, h.BucketCounts())
	}
	if got := reg.Histogram(obs.L("starts_source_query_seconds", "source", "cs")).Count(); got != 2 {
		t.Errorf("cs query_seconds count = %d", got)
	}
	if got := reg.Counter(obs.L("starts_merge_docs_total", "strategy", merge.TermStats{}.Name())).Value(); got == 0 {
		t.Error("merge_docs_total should be non-zero")
	}
}

// TestBreakerFlapMetrics scripts an outage with the fault injector and
// watches the breaker-transition counters: the circuit opens during the
// outage, goes half-open at the first post-cooldown probe, and closes
// when the probe succeeds.
func TestBreakerFlapMetrics(t *testing.T) {
	_, srcs := fleet(t)
	reg := obs.NewRegistry()

	clock := time.Now()
	br := resilient.NewBreaker(resilient.BreakerConfig{
		FailureThreshold: 2,
		Cooldown:         time.Second,
		Metrics:          reg,
		Now:              func() time.Time { return clock },
	})
	fc := faulty.WrapConn(client.NewLocalConn(srcs["cs"], nil), faulty.Config{})
	flappy := New(Options{Timeout: 5 * time.Second, Breaker: br, Metrics: reg})
	flappy.Add(fc)
	ctx := context.Background()
	if err := flappy.Harvest(ctx); err != nil {
		t.Fatal(err)
	}

	q := rankingQuery(t, `list((body-of-text "databases"))`)
	count := func(to string) int64 {
		return reg.Counter(obs.L("starts_breaker_transitions_total", "source", "cs", "to", to)).Value()
	}

	// Outage: two failing queries trip the threshold and open the circuit.
	fc.SetFailing(true)
	for i := 0; i < 2; i++ {
		if _, err := flappy.Search(ctx, q); err == nil {
			t.Fatal("search against a downed source should fail")
		}
	}
	if got := count("open"); got != 1 {
		t.Errorf("to=open transitions = %d, want 1", got)
	}
	// While open, the search is shed without reaching the source: the
	// answer degrades to "skipped" instead of waiting out a timeout.
	calls := fc.Calls()
	shed, err := flappy.Search(ctx, q)
	if err != nil {
		t.Fatalf("shed search: %v", err)
	}
	if len(shed.Degraded.Skipped) != 1 {
		t.Errorf("shed degradation = %+v", shed.Degraded)
	}
	if fc.Calls() != calls {
		t.Errorf("open circuit still contacted the source (%d -> %d calls)", calls, fc.Calls())
	}

	// Recovery: past the cooldown the next search is admitted as the
	// half-open probe, succeeds, and closes the circuit.
	fc.SetFailing(false)
	clock = clock.Add(2 * time.Second)
	if _, err := flappy.Search(ctx, q); err != nil {
		t.Fatalf("probe search: %v", err)
	}
	if got := count("half-open"); got != 1 {
		t.Errorf("to=half-open transitions = %d, want 1", got)
	}
	if got := count("closed"); got != 1 {
		t.Errorf("to=closed transitions = %d, want 1", got)
	}
	if br.State("cs") != resilient.StateClosed {
		t.Errorf("final state = %v", br.State("cs"))
	}
}

// TestSearchOptionsDoNotMutateShared verifies the per-query options
// leave the metasearcher's baseline Options untouched, unlike the
// deprecated mutators.
func TestSearchOptionsDoNotMutateShared(t *testing.T) {
	ms, _ := fleet(t)
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	ctx := context.Background()

	base, err := ms.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Contacted) < 2 {
		t.Fatalf("baseline should contact several sources: %v", base.Contacted)
	}

	one, err := ms.Search(ctx, q,
		WithMaxSources(1),
		WithSelector(gloss.VMax{}),
		WithMerger(merge.RoundRobin{}),
		WithTimeout(time.Second),
		WithBudget(10*time.Second),
		WithPostFilter(false))
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Contacted) != 1 {
		t.Errorf("WithMaxSources(1) contacted %v", one.Contacted)
	}

	// The overrides were per-call: the next plain search behaves like the
	// first.
	again, err := ms.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Contacted) != len(base.Contacted) {
		t.Errorf("baseline mutated: contacted %v then %v", base.Contacted, again.Contacted)
	}
}

// TestSearchOptionsReplaceSetters pins the migration path for the
// removed SetSelector/SetMerger/SetMaxSources mutators: the same
// strategy swap now rides per-call SearchOptions.
func TestSearchOptionsReplaceSetters(t *testing.T) {
	ms, _ := fleet(t)
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	ans, err := ms.Search(context.Background(), q,
		WithSelector(gloss.VMax{}), WithMerger(merge.RoundRobin{}), WithMaxSources(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Contacted) != 1 {
		t.Errorf("WithMaxSources(1) contacted %v", ans.Contacted)
	}
}

// TestStatsSnapshotConsistent exercises the one-lock stats snapshot.
func TestStatsSnapshotConsistent(t *testing.T) {
	ms, _ := fleet(t)
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	if _, err := ms.Search(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	snap := ms.StatsSnapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot entries = %d: %+v", len(snap), snap)
	}
	queried := 0
	for _, e := range snap {
		if e.ID == "" {
			t.Errorf("entry without ID: %+v", e)
		}
		if e.Queried {
			queried++
			if e.Stats.Queries == 0 {
				t.Errorf("%s queried but zero queries: %+v", e.ID, e.Stats)
			}
		}
	}
	if queried == 0 {
		t.Error("no entry marked queried")
	}
}
