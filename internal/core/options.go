package core

import (
	"time"

	"starts/internal/gloss"
	"starts/internal/merge"
	"starts/internal/obs"
	"starts/internal/qcache"
)

// searchConfig is one Search call's effective configuration: the
// metasearcher's baseline Options overlaid with per-query SearchOptions.
type searchConfig struct {
	Options
	trace   *obs.Trace
	noCache bool
}

// SearchOption overrides one search's configuration without touching the
// metasearcher's shared Options, so concurrent callers can each pick a
// budget, merger or source cap for their own query:
//
//	ms.Search(ctx, q, core.WithBudget(2*time.Second), core.WithMaxSources(3))
//
// This replaces the deprecated SetSelector/SetMerger/SetMaxSources
// mutators, which raced against in-flight searches.
type SearchOption func(*searchConfig)

// WithSelector ranks sources with s for this search only.
func WithSelector(s gloss.Selector) SearchOption {
	return func(c *searchConfig) {
		if s != nil {
			c.Selector = s
		}
	}
}

// WithMerger fuses this search's per-source ranks with s.
func WithMerger(s merge.Strategy) SearchOption {
	return func(c *searchConfig) {
		if s != nil {
			c.Merger = s
		}
	}
}

// WithMaxSources bounds how many sources this search contacts (0 = all
// promising ones).
func WithMaxSources(n int) SearchOption {
	return func(c *searchConfig) { c.MaxSources = n }
}

// WithBudget bounds this whole search — harvesting plus fan-out — by d.
func WithBudget(d time.Duration) SearchOption {
	return func(c *searchConfig) { c.Budget = d }
}

// WithTimeout sets this search's per-source deadline.
func WithTimeout(d time.Duration) SearchOption {
	return func(c *searchConfig) {
		if d > 0 {
			c.Timeout = d
		}
	}
}

// WithPostFilter toggles verification mode for this search.
func WithPostFilter(on bool) SearchOption {
	return func(c *searchConfig) { c.PostFilter = on }
}

// WithCache serves this search through c, overriding (or supplying) the
// metasearcher's Options.Cache for this call only.
func WithCache(c *qcache.Cache) SearchOption {
	return func(cfg *searchConfig) { cfg.Cache = c }
}

// WithNoCache bypasses the query-result cache for this search: the full
// pipeline always runs and its answer is not stored. Use it for queries
// whose answers must reflect the sources right now.
func WithNoCache() SearchOption {
	return func(cfg *searchConfig) { cfg.noCache = true }
}

// WithSourceConcurrency caps how many wire calls this search's sources
// each run in parallel. The cap only takes effect for sources whose
// dispatch queue this search is the first to touch — queues are sized
// once, on first contact, and later overrides do not resize them.
func WithSourceConcurrency(n int) SearchOption {
	return func(c *searchConfig) {
		if n > 0 {
			c.SourceConcurrency = n
		}
	}
}

// WithQueueDepth bounds how many batches may wait per source before the
// dispatcher sheds with ErrQueueFull. Like WithSourceConcurrency, it
// applies only to queues first touched by this search.
func WithQueueDepth(n int) SearchOption {
	return func(c *searchConfig) {
		if n > 0 {
			c.QueueDepth = n
		}
	}
}

// WithMaxBatchWire bounds how many distinct queued queries one wire call
// multiplexes for this search's batch-capable sources (0 = the
// dispatcher default). Like WithSourceConcurrency, it applies only to
// queues first touched by this search.
func WithMaxBatchWire(n int) SearchOption {
	return func(c *searchConfig) {
		if n > 0 {
			c.MaxBatchWire = n
		}
	}
}

// WithTrace records this search's span tree into t (its zero value is
// fine; Search re-begins it), so the caller keeps the trace even when it
// discards the answer:
//
//	var tr obs.Trace
//	ans, err := ms.Search(ctx, q, core.WithTrace(&tr))
//	fmt.Print(tr.Snapshot().Tree())
func WithTrace(t *obs.Trace) SearchOption {
	return func(c *searchConfig) { c.trace = t }
}
