package core

import (
	"context"
	"time"

	"starts/internal/qcache"
)

// RefreshAhead scans the recorded workload for hot cache entries that
// will expire within lead and re-fills them in the background, so they
// never fall off the fast path: the refreshes reuse the cache's
// stale-while-revalidate machinery (deduplicated per key, bounded by the
// admission gate) and their fan-outs flow through the dispatch layer
// like any other search. It returns the number of refreshes started and
// does nothing without Options.Cache.
func (m *Metasearcher) RefreshAhead(lead time.Duration) int {
	m.mu.RLock()
	opts := m.opts
	m.mu.RUnlock()
	cache := opts.Cache
	if cache == nil {
		return 0
	}
	started := 0
	for _, e := range m.workload.Entries() {
		q, err := warmQuery(e)
		if err != nil {
			continue // recorded but not replayable; Warm counts these
		}
		// Fingerprint under the baseline options — what a plain Search
		// would use — matching the options the refresh fill runs under.
		key := m.cacheKey(q, opts)
		if !cache.ExpiresWithin(key, lead) {
			continue
		}
		cache.Refresh(key, m.fillFor(q, opts))
		m.metrics.Counter("starts_refresh_ahead_total").Inc()
		started++
	}
	return started
}

// StartRefresher runs RefreshAhead every interval until ctx ends,
// keeping hot entries fresh proactively. A lead of 0 defaults to twice
// the interval, so an entry expiring between two sweeps is still caught
// by the earlier one; an interval of 0 defaults to one minute. The
// returned channel closes when the refresher has stopped.
func (m *Metasearcher) StartRefresher(ctx context.Context, interval, lead time.Duration) <-chan struct{} {
	if interval <= 0 {
		interval = time.Minute
	}
	if lead <= 0 {
		lead = 2 * interval
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				m.RefreshAhead(lead)
			}
		}
	}()
	return done
}

// StartWorkloadSaver snapshots the recorded warm-start workload to path
// every interval until ctx ends, then once more on the way out — so a
// crash loses at most one interval of the hot set instead of everything
// a clean-exit-only save would. Save failures are counted
// (starts_workload_save_errors_total), never fatal. An interval of 0
// defaults to one minute. The returned channel closes after the final
// save.
func (m *Metasearcher) StartWorkloadSaver(ctx context.Context, path string, interval time.Duration) <-chan struct{} {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				m.SaveWorkload(path)
				return
			case <-t.C:
				m.SaveWorkload(path)
			}
		}
	}()
	return done
}

// SaveWorkload persists the current workload snapshot to path, counting
// the attempt into the metrics registry. It reports whether the save
// succeeded.
func (m *Metasearcher) SaveWorkload(path string) bool {
	if err := qcache.SaveWorkloadFile(path, m.Workload()); err != nil {
		m.metrics.Counter("starts_workload_save_errors_total").Inc()
		return false
	}
	m.metrics.Counter("starts_workload_saves_total").Inc()
	return true
}
