package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/obs"
	"starts/internal/qcache"
	"starts/internal/query"
	"starts/internal/source"
)

// testClock is a settable shared clock for freshness tests.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Date(1996, 6, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// freshSource describes one test source's freshness metadata.
type freshSource struct {
	id      string
	changed time.Time
	expires time.Time
}

// freshFleet builds a metasearcher over sources with the given freshness
// metadata, fronted by a cache sharing the fleet's fake clock.
func freshFleet(t *testing.T, clk *testClock, cfg qcache.Config, srcs []freshSource) (*Metasearcher, map[string]*blockingConn) {
	t.Helper()
	cfg.Now = clk.now
	conns := map[string]*blockingConn{}
	ms := New(Options{Timeout: 5 * time.Second, Cache: qcache.New(cfg), Now: clk.now, Metrics: cfg.Metrics})
	for _, fs := range srcs {
		eng, err := engine.New(engine.NewVectorConfig())
		if err != nil {
			t.Fatal(err)
		}
		s, err := source.New(fs.id, eng)
		if err != nil {
			t.Fatal(err)
		}
		s.Changed, s.Expires = fs.changed, fs.expires
		err = s.Add(&index.Document{
			Linkage: "http://" + fs.id + "/a", Title: fs.id + " paper",
			Body: "distributed databases query processing metasearch",
			Date: time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC),
		})
		if err != nil {
			t.Fatal(err)
		}
		conn := &blockingConn{Conn: client.NewLocalConn(s, nil)}
		conns[fs.id] = conn
		ms.Add(conn)
	}
	return ms, conns
}

// TestAnswerTTLFollowsSourceFreshness is the acceptance table test for
// per-source TTL derivation: answers built from sources with different
// DateExpires/DateChanged get different cache lifetimes — the minimum
// across the contacted fan-out, clamped to [TTLFloor, TTLCeiling] — and
// sources declaring nothing fall back to the cache's Config.TTL.
func TestAnswerTTLFollowsSourceFreshness(t *testing.T) {
	base := newTestClock().now()
	const (
		fallback = time.Minute
		floor    = time.Second
		ceiling  = 24 * time.Hour
	)
	cases := []struct {
		name    string
		sources []freshSource
		want    time.Duration // expected cached-answer lifetime
	}{
		{
			name:    "single source expiry",
			sources: []freshSource{{id: "s1", expires: base.Add(10 * time.Minute)}},
			want:    10 * time.Minute,
		},
		{
			name: "two sources, min expiry wins",
			sources: []freshSource{
				{id: "s1", expires: base.Add(10 * time.Minute)},
				{id: "s2", expires: base.Add(2 * time.Hour)},
			},
			want: 10 * time.Minute,
		},
		{
			name: "heuristic from DateChanged only",
			// Changed 100 minutes ago: a tenth of the age = 10 minutes.
			sources: []freshSource{{id: "s1", changed: base.Add(-100 * time.Minute)}},
			want:    10 * time.Minute,
		},
		{
			name: "already-expired source clamps to the floor",
			sources: []freshSource{
				{id: "s1", expires: base.Add(-time.Hour)},
				{id: "s2", expires: base.Add(2 * time.Hour)},
			},
			want: floor,
		},
		{
			name:    "far-future expiry clamps to the ceiling",
			sources: []freshSource{{id: "s1", expires: base.Add(90 * 24 * time.Hour)}},
			want:    ceiling,
		},
		{
			name:    "no freshness metadata falls back to Config.TTL",
			sources: []freshSource{{id: "s1"}},
			want:    fallback,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newTestClock()
			ms, conns := freshFleet(t, clk, qcache.Config{
				TTL: fallback, TTLFloor: floor, TTLCeiling: ceiling, StaleFor: -1,
			}, tc.sources)
			ctx := context.Background()
			mk := func() *query.Query { return rankingQuery(t, `list((body-of-text "databases"))`) }
			fanouts := func() (n int64) {
				for _, c := range conns {
					n += c.queries.Load()
				}
				return n
			}

			if _, err := ms.Search(ctx, mk()); err != nil {
				t.Fatal(err)
			}
			filled := fanouts()

			// Just inside the expected lifetime: served from cache, no new
			// fan-out.
			clk.advance(tc.want - time.Second/2)
			if _, err := ms.Search(ctx, mk()); err != nil {
				t.Fatal(err)
			}
			if got := fanouts(); got != filled {
				t.Fatalf("fan-out ran inside the %v lifetime (%d -> %d queries)", tc.want, filled, got)
			}
			// Just past it: the entry expired and the pipeline reruns.
			clk.advance(time.Second)
			if _, err := ms.Search(ctx, mk()); err != nil {
				t.Fatal(err)
			}
			if got := fanouts(); got == filled {
				t.Fatalf("fan-out did not rerun past the %v lifetime (still %d queries)", tc.want, got)
			}
		})
	}
}

// TestWarmStartServesFirstRepeatAsHit is the warm-start acceptance test:
// a "restarted" metasearcher (fresh instance, fresh cache, same sources)
// replays the previous run's saved workload and then serves its first
// repeated query as a cache hit, without touching any source.
func TestWarmStartServesFirstRepeatAsHit(t *testing.T) {
	ctx := context.Background()
	srcs := []freshSource{{id: "s1"}, {id: "s2"}}
	mk := func() *query.Query { return rankingQuery(t, `list((body-of-text "databases"))`) }

	// First life: serve some queries, save the workload.
	clk1 := newTestClock()
	ms1, _ := freshFleet(t, clk1, qcache.Config{TTL: time.Hour}, srcs)
	if _, err := ms1.Search(ctx, mk()); err != nil {
		t.Fatal(err)
	}
	if _, err := ms1.Search(ctx, rankingQuery(t, `list((title "metasearch"))`)); err != nil {
		t.Fatal(err)
	}
	workload := ms1.Workload()
	if len(workload) != 2 {
		t.Fatalf("recorded workload has %d entries, want 2", len(workload))
	}

	// Second life: fresh metasearcher and cache over the same sources.
	reg := obs.NewRegistry()
	clk2 := newTestClock()
	ms2, conns2 := freshFleet(t, clk2, qcache.Config{TTL: time.Hour, Metrics: reg}, srcs)
	stats, err := ms2.Warm(ctx, workload, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 2 || stats.Errors != 0 {
		t.Fatalf("warm stats = %+v, want 2 replayed, 0 errors", stats)
	}
	fanoutsAfterWarm := conns2["s1"].queries.Load() + conns2["s2"].queries.Load()
	if fanoutsAfterWarm == 0 {
		t.Fatal("warm replay never reached the sources")
	}

	// The first repeated query after the restart is a Hit: no source is
	// touched and the hit counter moves.
	hitsBefore := reg.Counter(obs.MQCacheHits).Value()
	ans, err := ms2.Search(ctx, mk())
	if err != nil {
		t.Fatal(err)
	}
	if got := conns2["s1"].queries.Load() + conns2["s2"].queries.Load(); got != fanoutsAfterWarm {
		t.Fatalf("first post-restart search fanned out (%d -> %d queries), want a pure cache hit",
			fanoutsAfterWarm, got)
	}
	if got := reg.Counter(obs.MQCacheHits).Value(); got != hitsBefore+1 {
		t.Fatalf("hits = %d, want %d (first repeat served as Hit)", got, hitsBefore+1)
	}
	if ans.Degraded.StaleAnswer {
		t.Fatal("warm-started answer marked stale")
	}
	if len(ans.Documents) == 0 {
		t.Fatal("warm-started answer is empty")
	}

	// Re-warming skips everything: every entry is already fresh.
	stats, err = ms2.Warm(ctx, workload, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 0 || stats.Skipped != 2 {
		t.Fatalf("second warm stats = %+v, want everything skipped", stats)
	}
}
