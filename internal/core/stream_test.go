package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"starts/internal/merge"
	"starts/internal/obs"
	"starts/internal/qcache"
	"starts/internal/query"
	"starts/internal/result"
)

// collectStream runs SearchStream with a recording sink and returns the
// answer plus the recorded events.
func collectStream(t *testing.T, ms *Metasearcher, q *query.Query, sopts ...SearchOption) (*Answer, []StreamEvent) {
	t.Helper()
	var events []StreamEvent
	ans, err := ms.SearchStream(context.Background(), q, func(ev StreamEvent) error {
		events = append(events, ev)
		return nil
	}, sopts...)
	if err != nil {
		t.Fatal(err)
	}
	return ans, events
}

// checkStreamShape asserts the StreamEvent contract against the final
// answer: exactly one terminal event, last; event ranks match their
// position in the concatenation; the concatenated Docs are pointerwise
// the final answer's Documents.
func checkStreamShape(t *testing.T, ans *Answer, events []StreamEvent) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	var got []*result.Document
	for i, ev := range events {
		if (ev.Final != nil) != (i == len(events)-1) {
			t.Fatalf("event %d/%d: Final=%v", i, len(events), ev.Final != nil)
		}
		if len(ev.Docs) > 0 && ev.Rank != len(got) {
			t.Fatalf("event %d: rank %d, want %d", i, ev.Rank, len(got))
		}
		got = append(got, ev.Docs...)
	}
	final := events[len(events)-1].Final
	if final != ans {
		t.Fatalf("terminal Final is not the returned answer")
	}
	if len(got) != len(ans.Documents) {
		t.Fatalf("streamed %d docs, answer has %d", len(got), len(ans.Documents))
	}
	for i := range got {
		if got[i] != ans.Documents[i] {
			t.Fatalf("streamed doc %d is %s, answer has %s", i, got[i].Linkage(), ans.Documents[i].Linkage())
		}
	}
}

// TestSearchStreamMatchesSearch: for every merge strategy, a streamed
// search emits the final answer's documents in order across its events
// and returns an answer identical to a plain Search of an identical
// fleet.
func TestSearchStreamMatchesSearch(t *testing.T) {
	strategies := []merge.Strategy{merge.TermStats{}, merge.RawScore{}, merge.Scaled{}, merge.RoundRobin{}}
	for _, strat := range strategies {
		t.Run(strat.Name(), func(t *testing.T) {
			q := rankingQuery(t, `list((body-of-text "databases") (body-of-text "metasearch"))`)
			msBatch, _ := fleet(t)
			want, err := msBatch.Search(context.Background(), q, WithMerger(strat))
			if err != nil {
				t.Fatal(err)
			}

			msStream, _ := fleet(t)
			ans, events := collectStream(t, msStream, q, WithMerger(strat))
			checkStreamShape(t, ans, events)

			if len(ans.Documents) != len(want.Documents) {
				t.Fatalf("streamed answer has %d docs, batch has %d", len(ans.Documents), len(want.Documents))
			}
			for i := range want.Documents {
				g, w := ans.Documents[i], want.Documents[i]
				if g.Linkage() != w.Linkage() || g.RawScore != w.RawScore ||
					fmt.Sprint(g.Sources) != fmt.Sprint(w.Sources) {
					t.Fatalf("rank %d: streamed %s (%g, %v) != batch %s (%g, %v)",
						i, g.Linkage(), g.RawScore, g.Sources, w.Linkage(), w.RawScore, w.Sources)
				}
			}

			// Per-source events carry outcomes for every contacted source.
			perSource := 0
			for _, ev := range events {
				if ev.SourceID != "" {
					perSource++
					if ev.Outcome == nil {
						t.Fatalf("per-source event for %s has no outcome", ev.SourceID)
					}
				}
			}
			if perSource != len(ans.Contacted) {
				t.Fatalf("%d per-source events for %d contacted sources", perSource, len(ans.Contacted))
			}
		})
	}
}

// TestSearchStreamNilSinkIsSearch: Search and SearchStream with a nil
// sink are the same code path; a nil sink must not panic or change
// results.
func TestSearchStreamNilSinkIsSearch(t *testing.T) {
	ms, _ := fleet(t)
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	ans, err := ms.SearchStream(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Documents) == 0 {
		t.Fatal("no documents")
	}
	if n := ms.Metrics().Counter(obs.MStreamSearches).Value(); n != 0 {
		t.Fatalf("nil-sink search counted as streamed (%d)", n)
	}
}

// TestSearchStreamCacheReplay: the flight leader streams per-source
// events; a later identical search is served from cache as exactly one
// terminal event, without touching the sources again.
func TestSearchStreamCacheReplay(t *testing.T) {
	reg := obs.NewRegistry()
	ms, conn, _ := cachedFleet(t, qcache.Config{Metrics: reg, TTL: time.Hour})
	ms.opts.Metrics = reg // share so stream metrics land in reg
	ms.metrics = reg
	q := rankingQuery(t, `list((body-of-text "databases"))`)

	ans1, ev1 := collectStream(t, ms, q)
	checkStreamShape(t, ans1, ev1)
	if len(ev1) < 2 {
		t.Fatalf("leader emitted %d events, want per-source + terminal", len(ev1))
	}
	if got := conn.queries.Load(); got != 1 {
		t.Fatalf("leader ran %d fan-outs, want 1", got)
	}

	ans2, ev2 := collectStream(t, ms, q)
	checkStreamShape(t, ans2, ev2)
	if len(ev2) != 1 {
		t.Fatalf("cache hit emitted %d events, want one terminal replay", len(ev2))
	}
	if got := conn.queries.Load(); got != 1 {
		t.Fatalf("cache hit re-ran the fan-out (%d)", got)
	}
	if n := reg.Counter(obs.MStreamReplays).Value(); n != 1 {
		t.Fatalf("replays = %d, want 1", n)
	}
	if len(ans2.Documents) != len(ans1.Documents) {
		t.Fatalf("replayed answer has %d docs, original %d", len(ans2.Documents), len(ans1.Documents))
	}
}

// TestSearchStreamSinkErrorDoesNotPoisonSearch: a sink that fails mid
// stream stops receiving events, but the search completes, returns the
// full answer, and fills the cache for the next caller.
func TestSearchStreamSinkErrorDoesNotPoisonSearch(t *testing.T) {
	reg := obs.NewRegistry()
	ms, conn, _ := cachedFleet(t, qcache.Config{Metrics: reg, TTL: time.Hour})
	ms.metrics = reg
	q := rankingQuery(t, `list((body-of-text "databases"))`)

	calls := 0
	ans, err := ms.SearchStream(context.Background(), q, func(StreamEvent) error {
		calls++
		return errors.New("client went away")
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("sink called %d times after failing, want 1", calls)
	}
	if len(ans.Documents) == 0 {
		t.Fatal("failed sink cost the caller its answer")
	}
	if n := reg.Counter(obs.MStreamSinkErrors).Value(); n != 1 {
		t.Fatalf("sink errors = %d, want 1", n)
	}
	// The answer was still cached: the next search is a hit.
	if _, err := ms.Search(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if got := conn.queries.Load(); got != 1 {
		t.Fatalf("search after failed-sink stream re-ran the fan-out (%d)", got)
	}
}

// TestSearchStreamAcceptance is the concurrent randomized equivalence
// suite (run under -race by the soak tier): many goroutines stream the
// same and different queries against one cached metasearcher; every
// stream — leader, coalesced follower, or cache hit — must satisfy the
// event contract against its own returned answer.
func TestSearchStreamAcceptance(t *testing.T) {
	reg := obs.NewRegistry()
	ms, _ := fleet(t)
	ms.mu.Lock()
	ms.opts.Cache = qcache.New(qcache.Config{Metrics: reg, TTL: time.Hour})
	ms.mu.Unlock()

	queries := []string{
		`list((body-of-text "databases"))`,
		`list((body-of-text "metasearch") (body-of-text "ranking"))`,
		`list((body-of-text "compost"))`,
		`list((body-of-text "archive") (body-of-text "records"))`,
	}
	strategies := []merge.Strategy{merge.TermStats{}, merge.RoundRobin{}, merge.Scaled{}}

	const rounds = 3
	var wg sync.WaitGroup
	errc := make(chan error, rounds*len(queries)*len(strategies))
	for r := 0; r < rounds; r++ {
		for _, qs := range queries {
			for _, strat := range strategies {
				wg.Add(1)
				go func(qs string, strat merge.Strategy) {
					defer wg.Done()
					q := rankingQuery(t, qs)
					var events []StreamEvent
					ans, err := ms.SearchStream(context.Background(), q, func(ev StreamEvent) error {
						events = append(events, ev)
						return nil
					}, WithMerger(strat))
					if err != nil {
						errc <- err
						return
					}
					var got []*result.Document
					for i, ev := range events {
						if (ev.Final != nil) != (i == len(events)-1) {
							errc <- fmt.Errorf("event %d/%d: Final misplaced", i, len(events))
							return
						}
						got = append(got, ev.Docs...)
					}
					if len(got) != len(ans.Documents) {
						errc <- fmt.Errorf("streamed %d docs, answer has %d", len(got), len(ans.Documents))
						return
					}
					for i := range got {
						if got[i] != ans.Documents[i] {
							errc <- fmt.Errorf("streamed doc %d diverges from answer", i)
							return
						}
					}
				}(qs, strat)
			}
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
