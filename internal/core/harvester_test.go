package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/meta"
	"starts/internal/source"
)

// harvestFixture is one countingConn source with a settable clock.
func harvestFixture(t *testing.T, expires time.Duration) (*Metasearcher, *countingConn, *testClock) {
	t.Helper()
	clk := newTestClock()
	ms := New(Options{Now: clk.now})
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := source.New("S", eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&index.Document{Linkage: "http://s/1", Title: "doc", Body: "words"}); err != nil {
		t.Fatal(err)
	}
	if expires > 0 {
		s.Expires = clk.now().Add(expires)
	}
	c := &countingConn{Conn: client.NewLocalConn(s, nil)}
	ms.Add(c)
	return ms, c, clk
}

// TestHarvestDueLead: a scheduled sweep re-pulls a source whose
// DateExpires falls within the lead window, before it actually expires —
// and leaves sources with plenty of life alone.
func TestHarvestDueLead(t *testing.T) {
	ms, c, clk := harvestFixture(t, time.Hour)
	ctx := context.Background()

	// First sweep: the entry is missing, so it is due.
	if errs := ms.HarvestDue(ctx, 10*time.Minute); len(errs) != 1 {
		t.Fatalf("initial sweep harvested %d sources, want 1", len(errs))
	}
	if got := c.metaCalls.Load(); got != 1 {
		t.Fatalf("metadata fetched %d times, want 1", got)
	}

	// Expiry is an hour out, lead only 10 minutes: not due.
	if errs := ms.HarvestDue(ctx, 10*time.Minute); len(errs) != 0 {
		t.Fatalf("sweep refreshed %d sources an hour before expiry", len(errs))
	}

	// 55 minutes later the entry expires within the lead: due again.
	clk.advance(55 * time.Minute)
	if errs := ms.HarvestDue(ctx, 10*time.Minute); len(errs) != 1 {
		t.Fatalf("sweep near expiry refreshed %d sources, want 1", len(errs))
	}
	if got := c.metaCalls.Load(); got != 2 {
		t.Fatalf("metadata fetched %d times after near-expiry sweep, want 2", got)
	}
}

// TestHarvestDueNoExpiry: a source that declares no DateExpires is
// pulled once and never again by the scheduler.
func TestHarvestDueNoExpiry(t *testing.T) {
	ms, c, clk := harvestFixture(t, 0)
	ctx := context.Background()
	ms.HarvestDue(ctx, time.Minute)
	clk.advance(100 * 24 * time.Hour)
	ms.HarvestDue(ctx, time.Minute)
	if got := c.metaCalls.Load(); got != 1 {
		t.Fatalf("metadata fetched %d times for a non-expiring source, want 1", got)
	}
}

// flakyHarvestConn fails metadata fetches while broken is set.
type flakyHarvestConn struct {
	client.Conn
	broken bool
}

func (f *flakyHarvestConn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	if f.broken {
		return nil, errors.New("metadata service down")
	}
	return f.Conn.Metadata(ctx)
}

// TestHarvestDueRetriesStale: an entry kept past a failed refresh
// (stale-if-error) stays due every sweep until a refresh succeeds.
func TestHarvestDueRetriesStale(t *testing.T) {
	clk := newTestClock()
	ms := New(Options{Now: clk.now})
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := source.New("S", eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&index.Document{Linkage: "http://s/1", Title: "doc", Body: "words"}); err != nil {
		t.Fatal(err)
	}
	s.Expires = clk.now().Add(time.Minute)
	flaky := &flakyHarvestConn{Conn: client.NewLocalConn(s, nil)}
	ms.Add(flaky)
	ctx := context.Background()

	if errs := ms.HarvestDue(ctx, 0); errs["S"] != nil {
		t.Fatalf("initial harvest failed: %v", errs)
	}
	// The refresh at expiry fails; the entry survives marked stale.
	clk.advance(2 * time.Minute)
	flaky.broken = true
	if errs := ms.HarvestDue(ctx, 0); errs["S"] == nil {
		t.Fatal("broken refresh reported no error")
	}
	if n := ms.Metrics().Counter("starts_harvester_errors_total").Value(); n != 1 {
		t.Fatalf("harvester errors = %d, want 1", n)
	}
	// Stale entries stay due even though their DateExpires was renewed
	// into the past: the next sweep retries...
	if errs := ms.HarvestDue(ctx, 0); errs["S"] == nil {
		t.Fatal("stale entry was not retried")
	}
	// ...and a recovered source, publishing a renewed DateExpires,
	// clears the staleness.
	flaky.broken = false
	s.Expires = clk.now().Add(time.Hour)
	if errs := ms.HarvestDue(ctx, 0); errs["S"] != nil {
		t.Fatalf("recovery harvest failed: %v", errs)
	}
	if errs := ms.HarvestDue(ctx, 0); len(errs) != 0 {
		t.Fatalf("recovered fresh entry still due: %v", errs)
	}
}

// TestStartHarvester: the background ticker sweeps until its context
// ends, harvesting the missing entry exactly once (it has no expiry) and
// counting its ticks.
func TestStartHarvester(t *testing.T) {
	ms, c, _ := harvestFixture(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := ms.StartHarvester(ctx, 2*time.Millisecond, 0)

	ticks := ms.Metrics().Counter("starts_harvester_ticks_total")
	deadline := time.Now().Add(5 * time.Second)
	for ticks.Value() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("harvester ticked only %d times", ticks.Value())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("harvester did not stop")
	}
	if got := c.metaCalls.Load(); got != 1 {
		t.Fatalf("metadata fetched %d times across %d ticks, want 1", got, ticks.Value())
	}
}
