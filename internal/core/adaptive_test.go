package core

import (
	"context"
	"testing"
	"time"

	"starts/internal/gloss"
	"starts/internal/meta"
	"starts/internal/query"
)

func TestStatsAccumulate(t *testing.T) {
	ms, _ := fleet(t)
	ms.Add(&failingConn{id: "broken"})
	q := rankingQuery(t, `list((body-of-text "databases"))`)
	if _, err := ms.Search(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	st, ok := ms.Stats("cs")
	if !ok || st.Queries != 1 || st.Failures != 0 || st.DocsReturned == 0 {
		t.Errorf("cs stats = %+v, %v", st, ok)
	}
	if st.MeanLatency <= 0 {
		t.Errorf("latency not recorded: %v", st.MeanLatency)
	}
	bst, ok := ms.Stats("broken")
	if !ok || bst.Failures != 1 || bst.FailureRate() != 1 {
		t.Errorf("broken stats = %+v, %v", bst, ok)
	}
	if _, ok := ms.Stats("never-seen"); ok {
		t.Error("stats for unknown source")
	}
	if (SourceStats{}).FailureRate() != 0 {
		t.Error("zero-query failure rate should be 0")
	}
}

func TestAdaptiveSelectorDemotesFlakySources(t *testing.T) {
	ms, _ := fleet(t)
	ms.Add(&failingConn{id: "broken"})
	ctx := context.Background()
	q := rankingQuery(t, `list((body-of-text "databases"))`)

	// Let the metasearcher observe the failure a few times.
	for i := 0; i < 3; i++ {
		if _, err := ms.Search(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	// The failing conn claims df=90 for "databases" — content-wise it
	// looks best.
	infos := []gloss.SourceInfo{}
	for _, id := range ms.SourceIDs() {
		md, sum, ok := ms.Harvested(id)
		if !ok {
			t.Fatalf("%s not harvested", id)
		}
		infos = append(infos, gloss.SourceInfo{ID: id, Summary: sum, Meta: md})
	}
	plain := (gloss.VSum{}).Rank(q, infos)
	if plain[0].ID != "broken" {
		t.Fatalf("premise broken: content-wise the failing source should lead, got %v", plain[0])
	}
	adaptive := ms.NewAdaptiveSelector(gloss.VSum{})
	if adaptive.Name() != "adaptive(vGlOSS-Sum(0))" {
		t.Errorf("name = %s", adaptive.Name())
	}
	ranked := adaptive.Rank(q, infos)
	if ranked[0].ID == "broken" {
		t.Errorf("adaptive selector still ranks the always-failing source first: %v", ranked)
	}
	for _, r := range ranked {
		if r.ID == "broken" && r.Goodness != 0 {
			t.Errorf("failure rate 1 should zero goodness, got %g", r.Goodness)
		}
	}
}

func TestAdaptiveSelectorLatencyPenalty(t *testing.T) {
	book := newStatsBook()
	book.record("slow", 4*time.Second, false, 10)
	book.record("fast", 10*time.Millisecond, false, 10)
	sel := &AdaptiveSelector{
		Inner:           fixedSelector{"slow": 100, "fast": 90},
		Stats:           book.get,
		LatencyHalfLife: 2 * time.Second,
	}
	q := rankingQuery(t, `list((body-of-text "x"))`)
	ranked := sel.Rank(q, []gloss.SourceInfo{{ID: "slow"}, {ID: "fast"}})
	// slow: 100/(1+2) = 33.3; fast: 90/(1+0.005) ≈ 89.6.
	if ranked[0].ID != "fast" {
		t.Errorf("latency penalty did not demote the slow source: %v", ranked)
	}
}

// fixedSelector assigns fixed goodness by ID.
type fixedSelector map[string]float64

func (fixedSelector) Name() string { return "fixed" }

func (f fixedSelector) Rank(_ *query.Query, sources []gloss.SourceInfo) []gloss.Ranked {
	out := make([]gloss.Ranked, 0, len(sources))
	for _, si := range sources {
		out = append(out, gloss.Ranked{ID: si.ID, Goodness: f[si.ID]})
	}
	return out
}

func TestAutoRefresh(t *testing.T) {
	clock := time.Date(1996, 6, 1, 0, 0, 0, 0, time.UTC)
	ms := New(Options{Now: func() time.Time { return clock }})
	conn := &expiringConn{failingConn{id: "E"}}
	counting := &countingConn{Conn: conn}
	ms.Add(counting)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := ms.AutoRefresh(ctx, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for counting.metaCalls.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := counting.metaCalls.Load(); got < 3 {
		t.Errorf("auto refresh fetched metadata %d times", got)
	}
	cancel()
	// Channel closes after cancellation.
	select {
	case <-errs:
	case <-time.After(2 * time.Second):
		t.Error("error channel not closed after cancel")
	}
}

// expiringConn serves metadata that is always already expired, forcing a
// refresh on every harvest.
type expiringConn struct{ failingConn }

func (e *expiringConn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	m, err := e.failingConn.Metadata(ctx)
	if err != nil {
		return nil, err
	}
	m.DateExpires = time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC)
	return m, nil
}
