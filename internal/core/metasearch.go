// Package core implements the metasearcher — the client the STARTS
// protocol exists to serve. It performs the paper's three metasearch
// tasks end to end: it harvests source metadata and content summaries
// (caching them until their DateExpires), chooses the best sources for
// each query with a GlOSS-style selector, translates the query per source
// from the harvested metadata, evaluates it at the chosen sources
// concurrently, and merges the returned ranks into a single answer,
// optionally verifying dropped query parts client-side.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"starts/internal/client"
	"starts/internal/gloss"
	"starts/internal/merge"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/translate"
)

// Options configure a metasearcher.
type Options struct {
	// Selector ranks sources per query; default vGlOSS Sum(0).
	Selector gloss.Selector
	// Merger fuses per-source ranks; default TermStats re-ranking.
	Merger merge.Strategy
	// MaxSources bounds how many sources a query contacts; 0 contacts
	// every source with non-zero estimated goodness.
	MaxSources int
	// Timeout is the per-source query deadline; default 15s.
	Timeout time.Duration
	// PostFilter enables verification mode: results are re-checked
	// against query parts a source could not evaluate.
	PostFilter bool
	// Now overrides the clock, for cache-expiry tests.
	Now func() time.Time
}

// Metasearcher provides a unified query interface over many STARTS
// sources.
type Metasearcher struct {
	opts Options

	mu      sync.RWMutex
	conns   map[string]client.Conn
	order   []string
	entries map[string]*entry

	stats *statsBook
}

// entry is one source's harvested state.
type entry struct {
	meta      *meta.SourceMeta
	summary   *meta.ContentSummary
	harvested time.Time
}

// New returns a metasearcher with the given options.
func New(opts Options) *Metasearcher {
	if opts.Selector == nil {
		opts.Selector = gloss.VSum{}
	}
	if opts.Merger == nil {
		opts.Merger = merge.TermStats{}
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 15 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Metasearcher{
		opts:    opts,
		conns:   map[string]client.Conn{},
		entries: map[string]*entry{},
		stats:   newStatsBook(),
	}
}

// SetSelector replaces the source-selection strategy.
func (m *Metasearcher) SetSelector(s gloss.Selector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.opts.Selector = s
}

// SetMerger replaces the rank-merging strategy.
func (m *Metasearcher) SetMerger(s merge.Strategy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.opts.Merger = s
}

// SetMaxSources changes how many sources a query contacts (0 = all
// promising ones).
func (m *Metasearcher) SetMaxSources(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.opts.MaxSources = n
}

// Add registers a source connection. Re-adding an ID replaces the
// connection and invalidates its harvested state.
func (m *Metasearcher) Add(c client.Conn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := c.SourceID()
	if _, known := m.conns[id]; !known {
		m.order = append(m.order, id)
	}
	m.conns[id] = c
	delete(m.entries, id)
}

// SourceIDs lists registered sources in registration order.
func (m *Metasearcher) SourceIDs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.order...)
}

// expired reports whether a harvested entry must be refreshed.
func (m *Metasearcher) expired(e *entry) bool {
	if e == nil {
		return true
	}
	exp := e.meta.DateExpires
	return !exp.IsZero() && m.opts.Now().After(exp)
}

// Harvest fetches metadata and content summaries for every source whose
// cached copy is missing or expired (per its DateExpires), concurrently.
// It returns the first error encountered, after attempting all sources.
func (m *Metasearcher) Harvest(ctx context.Context) error {
	for _, err := range m.harvestAll(ctx) {
		if err != nil {
			return err
		}
	}
	return nil
}

// harvestAll refreshes every stale source and returns the per-source
// errors; healthy sources are cached regardless of their siblings.
func (m *Metasearcher) harvestAll(ctx context.Context) map[string]error {
	m.mu.RLock()
	var stale []string
	for _, id := range m.order {
		if m.expired(m.entries[id]) {
			stale = append(stale, id)
		}
	}
	m.mu.RUnlock()

	var wg sync.WaitGroup
	errs := make([]error, len(stale))
	for i, id := range stale {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			errs[i] = m.harvestOne(ctx, id)
		}(i, id)
	}
	wg.Wait()
	out := map[string]error{}
	for i, id := range stale {
		if errs[i] != nil {
			out[id] = errs[i]
		}
	}
	return out
}

func (m *Metasearcher) harvestOne(ctx context.Context, id string) error {
	m.mu.RLock()
	conn := m.conns[id]
	m.mu.RUnlock()
	if conn == nil {
		return fmt.Errorf("core: unknown source %q", id)
	}
	md, err := conn.Metadata(ctx)
	if err != nil {
		return fmt.Errorf("core: harvesting metadata of %s: %w", id, err)
	}
	sum, err := conn.Summary(ctx)
	if err != nil {
		return fmt.Errorf("core: harvesting summary of %s: %w", id, err)
	}
	m.mu.Lock()
	m.entries[id] = &entry{meta: md, summary: sum, harvested: m.opts.Now()}
	m.mu.Unlock()
	return nil
}

// Harvested returns the cached metadata and summary for a source.
func (m *Metasearcher) Harvested(id string) (*meta.SourceMeta, *meta.ContentSummary, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[id]
	if !ok {
		return nil, nil, false
	}
	return e.meta, e.summary, true
}

// SourceOutcome records one contacted source's part of an answer.
type SourceOutcome struct {
	// Sent is the translated query actually submitted.
	Sent *query.Query
	// Report describes what translation dropped.
	Report *translate.Report
	// Results are the source's results (nil on error).
	Results *result.Results
	// Err is the per-source failure, if any; other sources still answer.
	Err error
	// Elapsed is the source's response time.
	Elapsed time.Duration
}

// Answer is a merged metasearch result.
type Answer struct {
	// Documents is the fused rank, best first.
	Documents []*result.Document
	// Selected lists every source in estimated-goodness order, including
	// those not contacted.
	Selected []gloss.Ranked
	// Contacted lists the sources queried, in selection order.
	Contacted []string
	// PerSource holds each contacted source's outcome.
	PerSource map[string]*SourceOutcome
	// Unverifiable lists dropped terms verification mode could not check.
	Unverifiable []query.Term
}

// Search runs the full metasearch pipeline for a query. Sources must have
// been harvested first (Search harvests lazily if needed). Per-source
// failures are recorded in the answer, not returned as errors; Search only
// fails if the query is invalid or no source could be contacted.
func (m *Metasearcher) Search(ctx context.Context, q *query.Query) (*Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// Best-effort harvesting: an unreachable source must not block the
	// healthy ones; its error is recorded in the answer instead.
	harvestErrs := m.harvestAll(ctx)

	m.mu.RLock()
	opts := m.opts
	infos := make([]gloss.SourceInfo, 0, len(m.order))
	for _, id := range m.order {
		e := m.entries[id]
		if e == nil {
			continue // not harvested; its error is in harvestErrs
		}
		infos = append(infos, gloss.SourceInfo{ID: id, Summary: e.summary, Meta: e.meta})
	}
	m.mu.RUnlock()
	if len(infos) == 0 {
		for id, err := range harvestErrs {
			return nil, fmt.Errorf("core: no source could be harvested (%s: %w)", id, err)
		}
		return nil, fmt.Errorf("core: no sources registered")
	}

	ranked := opts.Selector.Rank(q, infos)
	contacted := pick(ranked, opts.MaxSources)
	if len(contacted) == 0 {
		return nil, fmt.Errorf("core: no promising sources for query (of %d registered)", len(infos))
	}

	answer := &Answer{Selected: ranked, Contacted: contacted, PerSource: map[string]*SourceOutcome{}}
	for id, err := range harvestErrs {
		answer.PerSource[id] = &SourceOutcome{Err: fmt.Errorf("core: harvesting %s: %w", id, err)}
	}
	outcomes := m.fanOut(ctx, q, contacted, opts.Timeout)

	var inputs []merge.SourceResult
	for _, id := range contacted {
		oc := outcomes[id]
		answer.PerSource[id] = oc
		if oc.Err != nil || oc.Results == nil {
			continue
		}
		docs := oc.Results.Documents
		if opts.PostFilter && oc.Report != nil && len(oc.Report.DroppedTerms) > 0 {
			kept, unver := translate.PostFilter(docs, oc.Report.DroppedTerms)
			oc.Results.Documents = kept
			answer.Unverifiable = append(answer.Unverifiable, unver...)
		}
		md, sum, _ := m.Harvested(id)
		inputs = append(inputs, merge.SourceResult{
			SourceID: id, Meta: md, Summary: sum, Results: oc.Results,
		})
	}
	if len(inputs) == 0 {
		// Every contacted source failed.
		for _, id := range contacted {
			if oc := outcomes[id]; oc.Err != nil {
				return nil, fmt.Errorf("core: all %d contacted sources failed, first error: %w", len(contacted), oc.Err)
			}
		}
		return answer, nil
	}

	answer.Documents = opts.Merger.Merge(q, inputs)
	if max := q.EffectiveMaxResults(); len(answer.Documents) > max {
		answer.Documents = answer.Documents[:max]
	}
	return answer, nil
}

// pick keeps the sources worth contacting: positive estimated goodness,
// capped at maxSources. If the selector assigns no positive goodness at
// all (e.g. the random baseline), every source is eligible.
func pick(ranked []gloss.Ranked, maxSources int) []string {
	anyPositive := false
	for _, r := range ranked {
		if r.Goodness > 0 {
			anyPositive = true
			break
		}
	}
	var ids []string
	for _, r := range ranked {
		if anyPositive && r.Goodness <= 0 {
			continue
		}
		ids = append(ids, r.ID)
		if maxSources > 0 && len(ids) >= maxSources {
			break
		}
	}
	return ids
}

// fanOut queries the chosen sources concurrently under the per-source
// timeout.
func (m *Metasearcher) fanOut(ctx context.Context, q *query.Query, ids []string, timeout time.Duration) map[string]*SourceOutcome {
	outcomes := make(map[string]*SourceOutcome, len(ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			oc := m.queryOne(ctx, q, id, timeout)
			mu.Lock()
			outcomes[id] = oc
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	return outcomes
}

func (m *Metasearcher) queryOne(ctx context.Context, q *query.Query, id string, timeout time.Duration) *SourceOutcome {
	oc := &SourceOutcome{}
	m.mu.RLock()
	conn := m.conns[id]
	e := m.entries[id]
	m.mu.RUnlock()
	if conn == nil || e == nil {
		oc.Err = fmt.Errorf("core: source %q not harvested", id)
		return oc
	}
	oc.Sent, oc.Report = translate.ForSource(q, e.meta)
	if oc.Sent.Filter == nil && oc.Sent.Ranking == nil {
		oc.Err = fmt.Errorf("core: nothing of the query survives translation for %s", id)
		return oc
	}
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	start := time.Now()
	res, err := conn.Query(cctx, oc.Sent)
	oc.Elapsed = time.Since(start)
	if err != nil {
		oc.Err = fmt.Errorf("core: querying %s: %w", id, err)
		m.stats.record(id, oc.Elapsed, true, 0)
		return oc
	}
	oc.Results = res
	m.stats.record(id, oc.Elapsed, false, len(res.Documents))
	return oc
}

// RankedIDs is a convenience: the IDs of a Ranked slice in order.
func RankedIDs(rs []gloss.Ranked) []string {
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}
