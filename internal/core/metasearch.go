// Package core implements the metasearcher — the client the STARTS
// protocol exists to serve. It performs the paper's three metasearch
// tasks end to end: it harvests source metadata and content summaries
// (caching them until their DateExpires), chooses the best sources for
// each query with a GlOSS-style selector, translates the query per source
// from the harvested metadata, evaluates it at the chosen sources
// concurrently, and merges the returned ranks into a single answer,
// optionally verifying dropped query parts client-side.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"starts/internal/adaptive"
	"starts/internal/client"
	"starts/internal/dispatch"
	"starts/internal/gloss"
	"starts/internal/merge"
	"starts/internal/meta"
	"starts/internal/obs"
	"starts/internal/qcache"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/translate"
)

// Options configure a metasearcher.
type Options struct {
	// Selector ranks sources per query; default vGlOSS Sum(0).
	Selector gloss.Selector
	// Merger fuses per-source ranks; default TermStats re-ranking.
	Merger merge.Strategy
	// MaxSources bounds how many sources a query contacts; 0 contacts
	// every source with non-zero estimated goodness.
	MaxSources int
	// Timeout is the per-source query deadline; default 15s.
	Timeout time.Duration
	// Budget bounds one whole Search call — harvesting plus fan-out —
	// independently of the per-source Timeout; 0 sets no overall
	// deadline. With a budget, a pathological fleet degrades the answer
	// instead of stacking per-source timeouts.
	Budget time.Duration
	// Breaker, when set, is consulted before fan-out: sources it refuses
	// are skipped (reported in Answer.Degraded) and every query outcome
	// is fed back to it. resilient.NewBreaker provides one.
	Breaker BreakerGate
	// PostFilter enables verification mode: results are re-checked
	// against query parts a source could not evaluate.
	PostFilter bool
	// Metrics receives the metasearcher's counters, gauges and latency
	// histograms; nil allocates a private registry, so instrumentation is
	// always on (retrieve it with Metasearcher.Metrics). Share one
	// registry across components to get a single /metrics view.
	Metrics *obs.Registry
	// Cache, when set, serves repeated identical queries from a shared
	// query-result cache: concurrent identical queries coalesce into one
	// fan-out, expired entries are served stale while a background
	// refresh runs (reported via Answer.Degraded.StaleAnswer), and under
	// overload the cache's admission gate sheds queries with a typed
	// qcache.ErrShed instead of queueing without bound. qcache.New
	// provides one; WithNoCache bypasses it per query. Cached answers
	// are shared between callers — treat them as read-only.
	Cache *qcache.Cache
	// SourceConcurrency bounds how many wire calls one source serves at
	// once: every per-source call (queries, harvests, warm replays, SWR
	// refreshes) flows through the metasearcher's dispatch layer, where
	// each source owns this many workers. 0 takes
	// dispatch.DefaultConcurrency. A source's queue is sized on its
	// first contact; later per-search overrides do not resize it.
	SourceConcurrency int
	// QueueDepth bounds how many batches may wait per source before
	// submissions are shed with a typed dispatch.ErrQueueFull (surfaced
	// in the per-source outcome). 0 takes dispatch.DefaultQueueDepth.
	QueueDepth int
	// MaxBatchWire bounds how many distinct queued queries a dispatch
	// worker multiplexes into one wire call when a source's connection is
	// batch-capable (client.BatchConn). 0 takes
	// dispatch.DefaultMaxBatchWire; connections without batch support
	// ignore it and keep one wire call per query.
	MaxBatchWire int
	// Adaptive, when set, builds a self-tuning admission controller over
	// the dispatch layer: an AIMD loop that grows each source's
	// concurrency and queue depth while its latency stays under the
	// config's SLO and cuts them multiplicatively when it breaches (or
	// its breaker opens). The controller's Metrics, Now and Broken hook
	// are wired to this metasearcher's registry, clock and Breaker; call
	// StartAdaptive to run the loop, or Adaptive().Tick to drive it
	// manually. Nil leaves the limits static.
	Adaptive *adaptive.Config
	// Now overrides the clock, for cache-expiry tests.
	Now func() time.Time
}

// Metasearcher provides a unified query interface over many STARTS
// sources.
type Metasearcher struct {
	opts Options

	mu      sync.RWMutex
	conns   map[string]client.Conn
	order   []string
	entries map[string]*entry

	stats      *statsBook
	metrics    *obs.Registry
	workload   *qcache.Recorder
	dispatcher *dispatch.Dispatcher
	adaptive   *adaptive.Controller
}

// BreakerGate admits or refuses traffic to sources. It is satisfied by
// resilient.Breaker; core defines only the interface so the dependency
// points outward. Two optional methods are discovered by assertion:
// Open(id) bool becomes the dispatcher's fast-drain Refuse hook, and
// Release(id) is called for an admitted call that ends without a wire
// outcome (shed at the dispatch layer, coalesced onto another search's
// batch), so a half-open probe slot it holds is freed.
type BreakerGate interface {
	// Allow reports whether the source may be contacted now.
	Allow(id string) bool
	// Record feeds back a contact's outcome (nil err = success).
	Record(id string, err error)
}

// entry is one source's harvested state. Entries are immutable once
// published in Metasearcher.entries — refreshes (including stale-if-error
// marking) swap in a new entry, so readers may use one after dropping
// the lock.
type entry struct {
	meta      *meta.SourceMeta
	summary   *meta.ContentSummary
	harvested time.Time
	// stale marks an entry served past its DateExpires because a refresh
	// failed (stale-if-error): better an aging summary than no source.
	stale bool
}

// New returns a metasearcher with the given options.
func New(opts Options) *Metasearcher {
	if opts.Selector == nil {
		opts.Selector = gloss.VSum{}
	}
	if opts.Merger == nil {
		opts.Merger = merge.TermStats{}
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 15 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	// Breakers that can report their open state (resilient.Breaker can)
	// become the dispatcher's Refuse hook: batches queued for an open
	// source resolve immediately with dispatch.ErrRefused instead of
	// timing out one waiter at a time. The check is read-only, so it
	// cannot consume a half-open probe slot.
	var refuse func(string) bool
	if op, ok := opts.Breaker.(interface{ Open(id string) bool }); ok {
		refuse = op.Open
	}
	m := &Metasearcher{
		opts:     opts,
		conns:    map[string]client.Conn{},
		entries:  map[string]*entry{},
		stats:    newStatsBook(),
		metrics:  opts.Metrics,
		workload: qcache.NewRecorder(0),
		dispatcher: dispatch.New(dispatch.Config{
			Limits:  dispatch.Limits{Concurrency: opts.SourceConcurrency, QueueDepth: opts.QueueDepth, MaxBatchWire: opts.MaxBatchWire},
			Refuse:  refuse,
			Metrics: opts.Metrics,
			Now:     opts.Now,
		}),
	}
	if opts.Adaptive != nil {
		acfg := *opts.Adaptive
		// The controller reads the dispatcher's per-source run histograms,
		// so it must share the dispatcher's registry regardless of what the
		// config carried.
		acfg.Metrics = opts.Metrics
		if acfg.Now == nil {
			acfg.Now = opts.Now
		}
		if acfg.Broken == nil {
			if br, ok := opts.Breaker.(interface{ Broken(id string) bool }); ok {
				acfg.Broken = br.Broken
			} else if refuse != nil {
				acfg.Broken = refuse
			}
		}
		m.adaptive = adaptive.New(m.dispatcher, acfg)
	}
	return m
}

// Dispatcher returns the per-source dispatch layer all of this
// metasearcher's source traffic flows through.
func (m *Metasearcher) Dispatcher() *dispatch.Dispatcher { return m.dispatcher }

// Adaptive returns the admission controller built from Options.Adaptive,
// or nil when adaptive limits are not configured.
func (m *Metasearcher) Adaptive() *adaptive.Controller { return m.adaptive }

// StartAdaptive runs the adaptive admission control loop until ctx ends;
// the returned channel closes when the loop has stopped. Without
// Options.Adaptive it is a no-op returning an already-closed channel.
func (m *Metasearcher) StartAdaptive(ctx context.Context) <-chan struct{} {
	if m.adaptive == nil {
		done := make(chan struct{})
		close(done)
		return done
	}
	return m.adaptive.Start(ctx)
}

// DispatchStats reports every source queue's dispatch state and
// counters, sorted by source ID.
func (m *Metasearcher) DispatchStats() []dispatch.QueueStat { return m.dispatcher.Snapshot() }

// Close stops the dispatch layer: queued work drains, new searches fail
// with dispatch.ErrClosed. Call it when discarding a metasearcher whose
// process keeps running, so per-source workers do not linger.
func (m *Metasearcher) Close() { m.dispatcher.Close() }

// Metrics returns the registry this metasearcher records into.
func (m *Metasearcher) Metrics() *obs.Registry { return m.metrics }

// Add registers a source connection. Re-adding an ID replaces the
// connection and invalidates its harvested state.
func (m *Metasearcher) Add(c client.Conn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := c.SourceID()
	if _, known := m.conns[id]; !known {
		m.order = append(m.order, id)
	}
	m.conns[id] = c
	delete(m.entries, id)
	m.metrics.Gauge("starts_sources_registered").Set(int64(len(m.conns)))
}

// SourceIDs lists registered sources in registration order.
func (m *Metasearcher) SourceIDs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.order...)
}

// expired reports whether a harvested entry must be refreshed.
func (m *Metasearcher) expired(e *entry) bool {
	if e == nil {
		return true
	}
	exp := e.meta.DateExpires
	return !exp.IsZero() && m.opts.Now().After(exp)
}

// Harvest fetches metadata and content summaries for every source whose
// cached copy is missing or expired (per its DateExpires), concurrently
// through the dispatch layer. It returns the first error encountered,
// after attempting all sources.
func (m *Metasearcher) Harvest(ctx context.Context) error {
	m.mu.RLock()
	lim := dispatch.Limits{Concurrency: m.opts.SourceConcurrency, QueueDepth: m.opts.QueueDepth, MaxBatchWire: m.opts.MaxBatchWire}
	m.mu.RUnlock()
	for _, err := range m.harvestAll(ctx, lim) {
		if err != nil {
			return err
		}
	}
	return nil
}

// harvestAll refreshes every stale source and returns the per-source
// errors; healthy sources are cached regardless of their siblings. Each
// refresh is submitted to the source's dispatch queue under the key
// "harvest", so concurrent searches that both find a source stale share
// one harvest instead of racing duplicate fetches at it.
func (m *Metasearcher) harvestAll(ctx context.Context, lim dispatch.Limits) map[string]error {
	m.mu.RLock()
	total := len(m.order)
	var stale []string
	for _, id := range m.order {
		if m.expired(m.entries[id]) {
			stale = append(stale, id)
		}
	}
	m.mu.RUnlock()
	m.metrics.Counter("starts_harvest_cache_hits_total").Add(int64(total - len(stale)))
	m.metrics.Counter("starts_harvest_cache_misses_total").Add(int64(len(stale)))
	return m.harvestIDs(ctx, lim, stale)
}

// harvestIDs refreshes the given sources concurrently through the
// dispatch layer (key "harvest", so concurrent searches and the
// scheduled harvester share one fetch per source) and returns the
// per-source errors.
func (m *Metasearcher) harvestIDs(ctx context.Context, lim dispatch.Limits, ids []string) map[string]error {
	out := map[string]error{}
	tickets := make(map[string]*dispatch.Ticket, len(ids))
	for _, id := range ids {
		id := id
		t, err := m.dispatcher.Submit(ctx, id, "harvest", lim,
			func(tctx context.Context) (any, error) {
				return nil, m.harvestOne(tctx, id)
			})
		if err != nil {
			out[id] = err
			continue
		}
		tickets[id] = t
	}
	// All submitted harvests run concurrently on their sources' workers;
	// waiting for them in turn costs only the slowest one.
	for _, id := range ids {
		t := tickets[id]
		if t == nil {
			continue
		}
		if _, err := t.Wait(ctx); err != nil {
			out[id] = err
		}
	}
	return out
}

func (m *Metasearcher) harvestOne(ctx context.Context, id string) (err error) {
	sp := obs.SpanFrom(ctx).Child("harvest " + id)
	sp.SetSource(id)
	defer func() { sp.End(err) }()
	m.mu.RLock()
	conn := m.conns[id]
	m.mu.RUnlock()
	if conn == nil {
		return fmt.Errorf("core: unknown source %q", id)
	}
	ctx = obs.WithSpan(ctx, sp)
	md, err := conn.Metadata(ctx)
	if err != nil {
		m.keepStale(id)
		return fmt.Errorf("core: harvesting metadata of %s: %w", id, err)
	}
	sum, err := conn.Summary(ctx)
	if err != nil {
		m.keepStale(id)
		return fmt.Errorf("core: harvesting summary of %s: %w", id, err)
	}
	m.mu.Lock()
	m.entries[id] = &entry{meta: md, summary: sum, harvested: m.opts.Now()}
	m.mu.Unlock()
	return nil
}

// keepStale implements stale-if-error harvesting: when a refresh fails
// but an old entry exists, the old entry stays in service marked stale.
// Entries are immutable after publish, so marking means swapping in a
// copy.
func (m *Metasearcher) keepStale(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.entries[id]; e != nil && !e.stale {
		stale := *e
		stale.stale = true
		m.entries[id] = &stale
	}
}

// Harvested returns the cached metadata and summary for a source.
func (m *Metasearcher) Harvested(id string) (*meta.SourceMeta, *meta.ContentSummary, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[id]
	if !ok {
		return nil, nil, false
	}
	return e.meta, e.summary, true
}

// SourceOutcome records one contacted source's part of an answer.
type SourceOutcome struct {
	// Sent is the translated query actually submitted.
	Sent *query.Query
	// Report describes what translation dropped.
	Report *translate.Report
	// Results are the source's results (nil on error).
	Results *result.Results
	// Err is the per-source failure, if any; other sources still answer.
	Err error
	// Elapsed is the source's response time.
	Elapsed time.Duration
	// Stale marks an outcome computed from metadata kept past its
	// DateExpires because a refresh failed (stale-if-error).
	Stale bool
}

// Degradation reports how an answer fell short of a clean fan-out, so
// callers can tell a complete answer from a best-effort one. All lists
// are sorted by source ID.
type Degradation struct {
	// Skipped lists sources not contacted because their circuit breaker
	// refused traffic.
	Skipped []string
	// Stale lists contacted sources answered from metadata kept past its
	// DateExpires because a refresh failed.
	Stale []string
	// Failed lists contacted sources whose query failed.
	Failed []string
	// HarvestFailed lists sources with no usable harvest, not even a
	// stale one.
	HarvestFailed []string
	// StaleAnswer marks a whole answer served from the query-result
	// cache past its TTL while a background refresh runs
	// (stale-while-revalidate): every document may be out of date, but
	// the user got an instant answer instead of waiting out a fan-out.
	StaleAnswer bool
}

// Any reports whether the answer degraded at all.
func (d Degradation) Any() bool {
	return d.StaleAnswer ||
		len(d.Skipped)+len(d.Stale)+len(d.Failed)+len(d.HarvestFailed) > 0
}

// String summarizes the degradation for logs and shells.
func (d Degradation) String() string {
	if !d.Any() {
		return "none"
	}
	s := fmt.Sprintf("skipped=%v stale=%v failed=%v harvest-failed=%v",
		d.Skipped, d.Stale, d.Failed, d.HarvestFailed)
	if d.StaleAnswer {
		s += " stale-answer=true"
	}
	return s
}

// Answer is a merged metasearch result.
type Answer struct {
	// Documents is the fused rank, best first.
	Documents []*result.Document
	// Selected lists every source in estimated-goodness order, including
	// those not contacted.
	Selected []gloss.Ranked
	// Contacted lists the sources queried, in selection order.
	Contacted []string
	// PerSource holds each contacted source's outcome.
	PerSource map[string]*SourceOutcome
	// Unverifiable lists dropped terms verification mode could not check.
	Unverifiable []query.Term
	// Degraded reports skipped, stale and failed sources.
	Degraded Degradation
	// Trace is the search's span tree: harvest, select, translate,
	// per-source fan-out and merge, each timed and annotated. It is always
	// set; pass WithTrace to keep the trace when Search fails.
	Trace *obs.Trace
}

// Search runs the full metasearch pipeline for a query. Sources must have
// been harvested first (Search harvests lazily if needed). Per-source
// failures are recorded in the answer, not returned as errors; Search only
// fails if the query is invalid or no source could be contacted.
//
// Per-query SearchOptions override the constructor baseline for this call
// only; the shared Options are never mutated. Every search records a
// Trace (five timed stages: harvest, select, translate, per-source
// fan-out, merge — plus a "cache" stage when a query cache is configured)
// into Answer.Trace — or into a caller-owned trace via WithTrace — and
// counts into the metasearcher's metrics registry.
//
// With Options.Cache set (and not bypassed by WithNoCache), repeated
// identical queries are answered from cache: fresh hits skip the fan-out
// entirely, concurrent identical queries coalesce into one fan-out, and
// expired entries are served stale (Answer.Degraded.StaleAnswer) while a
// background refresh runs. Under overload the cache's admission gate
// rejects queries with an error satisfying errors.Is(err, qcache.ErrShed)
// within its queue timeout. Cached answers are shared — treat them as
// read-only.
func (m *Metasearcher) Search(ctx context.Context, q *query.Query, sopts ...SearchOption) (*Answer, error) {
	return m.searchStream(ctx, q, nil, sopts...)
}

// searchStream is the shared body of Search and SearchStream: the batch
// path is simply a stream with no sink (a nil emitter), so both run the
// identical pipeline and middleware chain.
func (m *Metasearcher) searchStream(ctx context.Context, q *query.Query, sink StreamSink, sopts ...SearchOption) (*Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	cfg := searchConfig{Options: m.opts}
	m.mu.RUnlock()
	for _, o := range sopts {
		if o != nil {
			o(&cfg)
		}
	}
	opts := cfg.Options

	var em *emitter
	if sink != nil {
		em = m.newEmitter(sink, opts)
		// The emitter dies with this call: a background refresh that
		// shares this query's fill later must not reach the sink.
		defer em.disarm()
		m.metrics.Counter(obs.MStreamSearches).Inc()
	}

	tr := cfg.trace
	if tr == nil {
		tr = &obs.Trace{}
	}
	tr.Begin(describeQuery(q))
	defer tr.Finish()
	ctx = obs.WithTrace(obs.WithMetrics(ctx, m.metrics), tr)
	m.metrics.Counter("starts_searches_total").Inc()
	// The injected clock times the search too, so frozen-clock freshness
	// tests observe deterministic (zero) latencies instead of real ones.
	searchStart := opts.Now()
	defer func() {
		m.metrics.Histogram("starts_search_seconds").Observe(opts.Now().Sub(searchStart))
	}()

	cache := opts.Cache
	if cfg.noCache {
		cache = nil
	}
	if cache == nil {
		return m.run(ctx, q, opts, em)
	}
	if em != nil {
		// The emitter travels to the fill by context: a leading fill runs
		// synchronously on this context and streams; background refreshes
		// run detached, find no emitter, and stay silent.
		ctx = withEmitter(ctx, em)
	}
	return m.searchCached(ctx, tr, q, opts, cache, em)
}

// searchCached is the cache-fronted Search path: it fingerprints the
// query, asks the cache, and only on a miss runs the full pipeline (as
// the coalescing flight's leader). The entry's lifetime comes from the
// answering sources' own freshness metadata (see answerTTL). The "cache"
// span annotates how the call was served, and every serve is recorded in
// the warm-start workload.
func (m *Metasearcher) searchCached(ctx context.Context, tr *obs.Trace, q *query.Query, opts Options, cache *qcache.Cache, em *emitter) (*Answer, error) {
	csp := tr.StartSpan("cache")
	key := m.cacheKey(q, opts)
	csp.Annotate("key", key)
	m.recordWorkload(key, q)
	v, outcome, err := cache.DoTTL(ctx, key, m.fillFor(q, opts))
	csp.Annotate("outcome", outcome.String())
	csp.End(err)
	if err != nil {
		return nil, err
	}
	ans := v.(*Answer)
	if outcome == qcache.Filled {
		// This call ran the pipeline itself; the answer already carries
		// this search's trace, and a streaming call already emitted
		// inside run (the fill found its emitter on the context).
		return ans, nil
	}
	// Hit, stale serve or coalesced follower: the shared answer arrived
	// whole, so a streaming call replays it as one terminal event.
	cp := ans.cachedCopy(tr, outcome == qcache.Stale)
	em.replay(cp)
	return cp, nil
}

// fillFor builds the cache fill that runs the full pipeline for q under
// opts and names the answer's own lifetime. It is shared by the
// cache-fronted Search path, its stale-while-revalidate refreshes, and
// the proactive refresher — every one of them fans out through the
// dispatch layer, so background refreshes respect the same per-source
// bounds as foreground searches.
func (m *Metasearcher) fillFor(q *query.Query, opts Options) qcache.TTLFill {
	return func(fctx context.Context) (any, time.Duration, error) {
		if obs.TraceFrom(fctx) == nil {
			// Background refresh: the triggering request's trace is long
			// finished, so the refresh runs under its own private trace
			// and the shared registry.
			ftr := obs.NewTrace("refresh " + describeQuery(q))
			defer ftr.Finish()
			fctx = obs.WithTrace(obs.WithMetrics(fctx, m.metrics), ftr)
		}
		// A leading fill runs on the searching caller's context and finds
		// its emitter there; detached background refreshes find nil and
		// run as plain batch searches.
		ans, err := m.run(fctx, q, opts, emitterFrom(fctx))
		if err != nil {
			return nil, 0, err
		}
		return ans, m.answerTTL(ans, opts), nil
	}
}

// answerTTL derives a merged answer's cache lifetime from the freshness
// metadata of the sources that produced it: the minimum qcache.FreshFor
// across the contacted sources, so the answer expires when its most
// volatile ingredient does. Sources declaring neither DateExpires nor
// DateChanged contribute nothing; if no source declares anything, 0 is
// returned and the cache falls back to its configured TTL. The cache
// clamps the result to [TTLFloor, TTLCeiling], mirroring the server's
// Cache-Control derivation for single sources.
func (m *Metasearcher) answerTTL(ans *Answer, opts Options) time.Duration {
	now := opts.Now()
	var min time.Duration
	found := false
	for _, id := range ans.Contacted {
		md, _, ok := m.Harvested(id)
		if !ok || md == nil {
			continue
		}
		ttl, ok := qcache.FreshFor(md.DateChanged, md.DateExpires, now)
		if !ok {
			continue
		}
		if !found || ttl < min {
			min, found = ttl, true
		}
	}
	if !found {
		return 0
	}
	return min
}

// recordWorkload notes one cache-fronted query in the warm-start
// workload: its fingerprint plus the Basic-1 text needed to replay it.
// Queries whose expressions do not round-trip through the parser (some
// multi-value ranking terms) are still recorded; Warm skips them with an
// error count instead of failing the replay.
func (m *Metasearcher) recordWorkload(key string, q *query.Query) {
	e := qcache.WarmEntry{Key: key, MaxResults: q.MaxResults}
	if q.Filter != nil {
		e.Filter = q.Filter.String()
	}
	if q.Ranking != nil {
		e.Ranking = q.Ranking.String()
	}
	m.workload.Record(e)
}

// Workload lists the recently served cache-fronted queries (bounded,
// deduplicated, least recently served first) for persisting across a
// restart and replaying with Warm.
func (m *Metasearcher) Workload() []qcache.WarmEntry { return m.workload.Entries() }

// CacheKey fingerprints q under the metasearcher's baseline options —
// the key Search would use for it. Exposed for warm-start bookkeeping
// and debugging.
func (m *Metasearcher) CacheKey(q *query.Query) string {
	m.mu.RLock()
	opts := m.opts
	m.mu.RUnlock()
	return m.cacheKey(q, opts)
}

// Warm replays a recorded workload through the regular cache-fronted
// Search path — every replay passes the cache's singleflight and
// admission gate — so a restarted metasearcher serves its hot queries as
// cache hits from the first request. At most concurrency replays run at
// once (qcache.DefaultWarmConcurrency if <= 0). Entries already fresh in
// the cache are skipped; entries whose recorded query no longer parses
// count as errors and are skipped. It returns an error only when no
// cache is configured.
func (m *Metasearcher) Warm(ctx context.Context, entries []qcache.WarmEntry, concurrency int) (qcache.WarmStats, error) {
	m.mu.RLock()
	cache := m.opts.Cache
	m.mu.RUnlock()
	if cache == nil {
		return qcache.WarmStats{}, fmt.Errorf("core: warm start needs Options.Cache")
	}
	stats := cache.Warm(ctx, entries, concurrency, func(rctx context.Context, e qcache.WarmEntry) error {
		q, err := warmQuery(e)
		if err != nil {
			return err
		}
		_, err = m.Search(rctx, q)
		return err
	})
	return stats, nil
}

// warmQuery reconstructs a replayable query from a workload entry's
// recorded Basic-1 text.
func warmQuery(e qcache.WarmEntry) (*query.Query, error) {
	if e.Filter == "" && e.Ranking == "" {
		return nil, fmt.Errorf("core: workload entry %q records no query text", e.Key)
	}
	// Start from the spec defaults, as interactive queries do, so the
	// replay fingerprints identically to the query it is reviving.
	q := query.New()
	if e.MaxResults != 0 {
		q.MaxResults = e.MaxResults
	}
	if e.Filter != "" {
		f, err := query.ParseFilter(e.Filter)
		if err != nil {
			return nil, fmt.Errorf("core: re-parsing workload filter: %w", err)
		}
		q.Filter = f
	}
	if e.Ranking != "" {
		r, err := query.ParseRanking(e.Ranking)
		if err != nil {
			return nil, fmt.Errorf("core: re-parsing workload ranking: %w", err)
		}
		q.Ranking = r
	}
	return q, nil
}

// cacheKey fingerprints a query together with everything outside it that
// shapes the answer: the selection and merge strategies, the source cap,
// verification mode, and the registered source set. Re-registering
// sources therefore implicitly invalidates all merged-answer entries.
func (m *Metasearcher) cacheKey(q *query.Query, opts Options) string {
	m.mu.RLock()
	ids := append([]string(nil), m.order...)
	m.mu.RUnlock()
	sort.Strings(ids)
	scope := fmt.Sprintf("search/%s/%s/%d/%t/%s",
		opts.Selector.Name(), opts.Merger.Name(), opts.MaxSources, opts.PostFilter,
		strings.Join(ids, ","))
	return qcache.Keyer{Scope: scope}.Key(q)
}

// cachedCopy prepares one cached answer for one serve: a shallow copy
// whose documents and per-source outcomes are shared (read-only by
// convention) but whose Trace is the serving call's own and whose
// Degradation marks a stale serve.
func (a *Answer) cachedCopy(tr *obs.Trace, stale bool) *Answer {
	cp := *a
	cp.Trace = tr
	cp.Degraded.StaleAnswer = stale
	return &cp
}

// run executes the full metasearch pipeline — harvest, select, translate,
// fan-out, merge — under the trace and registry already on ctx. It is the
// uncached Search body and the query cache's fill function. With a
// non-nil emitter the fan-out's completion points additionally feed an
// incremental merger and stream rank-stable documents as they settle;
// the final answer is built by the same batch merge either way.
func (m *Metasearcher) run(ctx context.Context, q *query.Query, opts Options, em *emitter) (*Answer, error) {
	tr := obs.TraceFrom(ctx)
	// The budget bounds the whole call — harvesting included — while
	// Timeout below bounds each individual source.
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}
	// Best-effort harvesting: an unreachable source must not block the
	// healthy ones; its error is recorded in the answer instead.
	hsp := tr.StartSpan("harvest")
	harvestErrs := m.harvestAll(obs.WithSpan(ctx, hsp),
		dispatch.Limits{Concurrency: opts.SourceConcurrency, QueueDepth: opts.QueueDepth, MaxBatchWire: opts.MaxBatchWire})
	hsp.Annotate("errors", strconv.Itoa(len(harvestErrs)))
	hsp.End(nil)

	m.mu.RLock()
	infos := make([]gloss.SourceInfo, 0, len(m.order))
	staleIDs := map[string]bool{}
	for _, id := range m.order {
		e := m.entries[id]
		if e == nil {
			continue // not harvested; its error is in harvestErrs
		}
		staleIDs[id] = e.stale
		infos = append(infos, gloss.SourceInfo{ID: id, Summary: e.summary, Meta: e.meta})
	}
	m.mu.RUnlock()
	if len(infos) == 0 {
		if len(harvestErrs) > 0 {
			return nil, fmt.Errorf("core: no source could be harvested: %w", joinSorted(harvestErrs))
		}
		return nil, fmt.Errorf("core: no sources registered")
	}

	ssp := tr.StartSpan("select")
	ranked := opts.Selector.Rank(q, infos)
	contacted := pick(ranked, opts.MaxSources)
	ssp.Annotate("selector", opts.Selector.Name())
	ssp.Annotate("candidates", strconv.Itoa(len(ranked)))
	ssp.Annotate("picked", strconv.Itoa(len(contacted)))
	ssp.End(nil)
	if len(contacted) == 0 {
		return nil, fmt.Errorf("core: no promising sources for query (of %d registered)", len(infos))
	}

	answer := &Answer{Selected: ranked, PerSource: map[string]*SourceOutcome{}, Trace: tr}
	for id, err := range harvestErrs {
		answer.PerSource[id] = &SourceOutcome{Err: fmt.Errorf("core: harvesting %s: %w", id, err)}
		if !staleIDs[id] {
			answer.Degraded.HarvestFailed = append(answer.Degraded.HarvestFailed, id)
		}
	}
	// Consult the breaker before fan-out: refused sources are skipped,
	// degrading the answer instead of waiting out another timeout.
	if opts.Breaker != nil {
		admitted := contacted[:0]
		for _, id := range contacted {
			if opts.Breaker.Allow(id) {
				admitted = append(admitted, id)
				continue
			}
			answer.Degraded.Skipped = append(answer.Degraded.Skipped, id)
			answer.PerSource[id] = &SourceOutcome{Err: fmt.Errorf("core: source %s skipped: circuit open", id)}
		}
		contacted = admitted
	}
	answer.Contacted = contacted

	plans := m.translateAll(tr, q, contacted)

	// The harvested context is snapshotted once, before fan-out, and used
	// for both the incremental merger's roster and the final merge inputs
	// — a concurrent re-harvest swapping an entry mid-search must not make
	// streamed and final scores disagree.
	type harvested struct {
		md  *meta.SourceMeta
		sum *meta.ContentSummary
	}
	ctxs := make([]harvested, len(contacted))
	for i, id := range contacted {
		ctxs[i].md, ctxs[i].sum, _ = m.Harvested(id)
	}
	var inc *merge.Incremental
	if em != nil && len(contacted) > 0 {
		roster := make([]merge.StreamSource, len(contacted))
		for i, id := range contacted {
			roster[i] = merge.StreamSource{SourceID: id, Meta: ctxs[i].md, Summary: ctxs[i].sum}
		}
		inc = merge.NewIncremental(opts.Merger, q, roster)
	}

	// onDone runs serialized at each source's completion (fanOut holds
	// its mutex): post-filtering and degradation accounting move here so
	// stream events see them as they happen; the batch path shares the
	// exact same code with the streaming steps skipped.
	unverified := make(map[string][]query.Term, len(contacted))
	onDone := func(slot int, id string, oc *SourceOutcome) {
		if oc.Stale {
			answer.Degraded.Stale = append(answer.Degraded.Stale, id)
		}
		ok := oc.Err == nil && oc.Results != nil
		if !ok {
			if oc.Err != nil {
				answer.Degraded.Failed = append(answer.Degraded.Failed, id)
			}
		} else if opts.PostFilter && oc.Report != nil && len(oc.Report.DroppedTerms) > 0 {
			kept, unver := translate.PostFilter(oc.Results.Documents, oc.Report.DroppedTerms)
			oc.Results.Documents = kept
			unverified[id] = unver
		}
		if inc == nil {
			return
		}
		rank := inc.Emitted()
		var docs []*result.Document
		if ok {
			docs = inc.Offer(slot, oc.Results)
		} else {
			docs = inc.Fail(slot)
		}
		em.emit(StreamEvent{
			Docs: docs, Rank: rank, SourceID: id, Outcome: oc,
			Degraded: answer.Degraded.snapshot(),
		})
	}
	outcomes := m.fanOut(ctx, contacted, plans, opts, onDone)

	msp := tr.StartSpan("merge")
	var inputs []merge.SourceResult
	for i, id := range contacted {
		oc := outcomes[id]
		answer.PerSource[id] = oc
		if oc.Err != nil || oc.Results == nil {
			continue
		}
		answer.Unverifiable = append(answer.Unverifiable, unverified[id]...)
		inputs = append(inputs, merge.SourceResult{
			SourceID: id, Meta: ctxs[i].md, Summary: ctxs[i].sum, Results: oc.Results,
		})
	}
	answer.Degraded.sort()
	msp.Annotate("strategy", opts.Merger.Name())
	msp.Annotate("inputs", strconv.Itoa(len(inputs)))
	if len(inputs) == 0 {
		msp.Annotate("docs", "0")
		msp.End(nil)
		// Every contacted source failed outright: surface the errors —
		// unless the breaker shed some sources, in which case a degraded
		// empty answer is the honest result and the caller can retry
		// after the cooldown.
		failures := map[string]error{}
		for _, id := range contacted {
			if oc := outcomes[id]; oc.Err != nil {
				failures[id] = oc.Err
			}
		}
		if len(failures) > 0 && len(answer.Degraded.Skipped) == 0 {
			return nil, fmt.Errorf("core: all %d contacted sources failed: %w", len(contacted), joinSorted(failures))
		}
		if em != nil {
			em.emit(StreamEvent{Degraded: answer.Degraded.snapshot(), Final: answer})
		}
		return answer, nil
	}

	// The final rank always comes from the ordinary batch merge — the
	// incremental merger streamed a stable prefix of exactly this rank
	// and mutated nothing, so batch and streamed answers are
	// bit-identical.
	answer.Documents = opts.Merger.Merge(q, inputs)
	if max := q.EffectiveMaxResults(); len(answer.Documents) > max {
		answer.Documents = answer.Documents[:max]
	}
	msp.Annotate("docs", strconv.Itoa(len(answer.Documents)))
	msp.End(nil)
	m.metrics.Counter(obs.L("starts_merge_docs_total", "strategy", opts.Merger.Name())).
		Add(int64(len(answer.Documents)))
	if em != nil {
		emitted := 0
		if inc != nil {
			emitted = inc.Emitted()
			if emitted > len(answer.Documents) {
				emitted = len(answer.Documents)
			}
		}
		em.emit(StreamEvent{
			Docs: answer.Documents[emitted:], Rank: emitted,
			Degraded: answer.Degraded.snapshot(), Final: answer,
		})
	}
	return answer, nil
}

// describeQuery renders a query compactly for traces and debug pages.
func describeQuery(q *query.Query) string {
	switch {
	case q.Filter != nil && q.Ranking != nil:
		return fmt.Sprintf("filter %v ranking %v", q.Filter, q.Ranking)
	case q.Filter != nil:
		return fmt.Sprintf("filter %v", q.Filter)
	case q.Ranking != nil:
		return fmt.Sprintf("ranking %v", q.Ranking)
	}
	return "(empty)"
}

// joinSorted aggregates per-source errors deterministically, sorted by
// source ID.
func joinSorted(errsByID map[string]error) error {
	ids := make([]string, 0, len(errsByID))
	for id := range errsByID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	joined := make([]error, len(ids))
	for i, id := range ids {
		joined[i] = fmt.Errorf("%s: %w", id, errsByID[id])
	}
	return errors.Join(joined...)
}

// sort orders every degradation list by source ID.
func (d *Degradation) sort() {
	sort.Strings(d.Skipped)
	sort.Strings(d.Stale)
	sort.Strings(d.Failed)
	sort.Strings(d.HarvestFailed)
}

// pick keeps the sources worth contacting: positive estimated goodness,
// capped at maxSources. If the selector assigns no positive goodness at
// all (e.g. the random baseline), every source is eligible.
func pick(ranked []gloss.Ranked, maxSources int) []string {
	anyPositive := false
	for _, r := range ranked {
		if r.Goodness > 0 {
			anyPositive = true
			break
		}
	}
	var ids []string
	for _, r := range ranked {
		if anyPositive && r.Goodness <= 0 {
			continue
		}
		ids = append(ids, r.ID)
		if maxSources > 0 && len(ids) >= maxSources {
			break
		}
	}
	return ids
}

// sourcePlan is one contacted source's prepared fan-out work: its
// connection, harvested state and translated query — or the reason it
// cannot be queried at all.
type sourcePlan struct {
	conn   client.Conn
	stale  bool
	sent   *query.Query
	report *translate.Report
	err    error // lookup or translation failure; skips the network call
}

// translateAll runs the translation stage: each contacted source gets the
// query rewritten against its harvested metadata, under its own span, so
// a trace shows exactly what each source was asked and what was dropped.
func (m *Metasearcher) translateAll(tr *obs.Trace, q *query.Query, ids []string) map[string]*sourcePlan {
	tsp := tr.StartSpan("translate")
	defer tsp.End(nil)
	m.mu.RLock()
	conns := make(map[string]client.Conn, len(ids))
	entries := make(map[string]*entry, len(ids))
	for _, id := range ids {
		conns[id] = m.conns[id]
		entries[id] = m.entries[id]
	}
	m.mu.RUnlock()

	plans := make(map[string]*sourcePlan, len(ids))
	for _, id := range ids {
		sp := tsp.Child("translate " + id)
		sp.SetSource(id)
		p := &sourcePlan{conn: conns[id]}
		plans[id] = p
		e := entries[id]
		if p.conn == nil || e == nil {
			p.err = fmt.Errorf("core: source %q not harvested", id)
			sp.End(p.err)
			continue
		}
		p.stale = e.stale
		p.sent, p.report = translate.ForSource(q, e.meta)
		if p.sent.Filter == nil && p.sent.Ranking == nil {
			p.err = fmt.Errorf("core: nothing of the query survives translation for %s", id)
			sp.End(p.err)
			continue
		}
		if p.report != nil && !p.report.Clean() {
			sp.Annotate("dropped-terms", strconv.Itoa(len(p.report.DroppedTerms)))
		}
		sp.End(nil)
	}
	return plans
}

// fanOut queries the planned sources through the dispatch layer, each
// under its own child span of the "fanout" stage. Ownership of the
// concurrency is inverted from the pre-dispatch design: the wire calls
// run on each source's bounded worker pool (where identical sub-queries
// from concurrent searches coalesce into one call), and this search only
// keeps one cheap waiter goroutine per source so every query span ends
// at its true completion time.
//
// onDone (optional) observes each source's completion in real time,
// serialized under the fan-out mutex — this is the hook the streaming
// path hangs the incremental merger on; slot is the source's index in
// ids. fanOut still waits for every source before returning.
func (m *Metasearcher) fanOut(ctx context.Context, ids []string, plans map[string]*sourcePlan, opts Options, onDone func(slot int, id string, oc *SourceOutcome)) map[string]*SourceOutcome {
	fsp := obs.TraceFrom(ctx).StartSpan("fanout")
	defer fsp.End(nil)
	ctx = obs.WithSpan(ctx, fsp)
	outcomes := make(map[string]*SourceOutcome, len(ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(slot int, id string) {
			defer wg.Done()
			oc := m.queryOne(ctx, id, plans[id], opts)
			mu.Lock()
			outcomes[id] = oc
			if onDone != nil {
				onDone(slot, id, oc)
			}
			mu.Unlock()
		}(i, id)
	}
	wg.Wait()
	return outcomes
}

// batchKey fingerprints one translated sub-query for cross-search
// coalescing: identical in-flight queries destined for the same source
// share one wire call. Hashing the translated (not the original) query
// means two different user queries that translate identically for a
// source still coalesce.
func batchKey(id string, sent *query.Query) string {
	return qcache.Keyer{Scope: "dispatch/" + id}.Key(sent)
}

func (m *Metasearcher) queryOne(ctx context.Context, id string, plan *sourcePlan, opts Options) *SourceOutcome {
	oc := &SourceOutcome{Stale: plan.stale, Sent: plan.sent, Report: plan.report}
	if plan.err != nil {
		oc.Err = plan.err
		return oc
	}
	sp := obs.SpanFrom(ctx).Child("query " + id)
	sp.SetSource(id)
	if plan.stale {
		sp.Annotate("stale", "true")
	}
	// The wire call runs on the source's dispatch workers, not on this
	// goroutine; the dispatch child span records the queueing side of the
	// call (coalescing, queue wait) separately from the source's answer.
	dsp := sp.Child("dispatch")
	dsp.SetSource(id)
	conn, sent, timeout := plan.conn, plan.sent, opts.Timeout
	start := opts.Now()
	// The per-source deadline starts before Submit and is carried on the
	// submitted context, so the dispatcher's deadline-aware admission can
	// see this caller's remaining budget and refuse work that could not
	// finish in time (dispatch.ErrDeadline) instead of queueing it. The
	// batch itself detaches from this cancellation; the wire call is
	// bounded by the same timeout applied inside the task.
	wctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	lim := dispatch.Limits{Concurrency: opts.SourceConcurrency, QueueDepth: opts.QueueDepth, MaxBatchWire: opts.MaxBatchWire}
	var ticket *dispatch.Ticket
	var err error
	if bconn, ok := conn.(client.BatchConn); ok {
		// A batch-capable connection submits multiplexable work: the
		// dispatch worker drains queued sub-queries for this source and
		// issues them as ONE wire call, so a fan-out burst pays one round
		// trip per drain instead of one per query. Per-item errors come
		// back index-aligned, and the breaker gating below uses
		// Ticket.FaultPrimary so a shared wire failure counts once.
		ticket, err = m.dispatcher.SubmitMux(obs.WithSpan(wctx, sp), id, batchKey(id, sent), lim,
			sent, func(gctx context.Context, items []any) ([]any, []error) {
				qs := make([]*query.Query, len(items))
				for i, it := range items {
					qs[i] = it.(*query.Query)
				}
				// The per-source Timeout bounds the wire call itself; the
				// waiters' contexts only bound their willingness to wait.
				qctx, cancel := context.WithTimeout(gctx, timeout)
				defer cancel()
				rs, es := bconn.QueryBatch(qctx, qs)
				vals := make([]any, len(items))
				errs := make([]error, len(items))
				if len(rs) != len(items) || len(es) != len(items) {
					werr := fmt.Errorf("core: querying %s: batch returned %d results, %d errors for %d queries",
						id, len(rs), len(es), len(items))
					for i := range errs {
						errs[i] = werr
					}
					return vals, errs
				}
				for i := range items {
					if rs[i] != nil {
						vals[i] = rs[i]
					}
					errs[i] = es[i]
				}
				return vals, errs
			})
	} else {
		ticket, err = m.dispatcher.Submit(obs.WithSpan(wctx, sp), id, batchKey(id, sent), lim,
			func(tctx context.Context) (any, error) {
				// The per-source Timeout bounds the wire call itself; the
				// waiters' contexts only bound their willingness to wait.
				qctx, cancel := context.WithTimeout(tctx, timeout)
				defer cancel()
				return conn.Query(qctx, sent)
			})
	}
	var res *result.Results
	led := true
	if err == nil {
		// The waiter honors the same per-source deadline the direct call
		// had — covering queue wait plus run — and the search's own
		// context (budget, cancellation). Abandoning the wait unregisters
		// this waiter; the wire call is cancelled once nobody waits.
		v, werr := ticket.Wait(wctx)
		err = werr
		led = ticket.Led()
		if v != nil {
			res = v.(*result.Results)
		}
		if d := ticket.RunFor(); d > 0 {
			oc.Elapsed = d // the shared wire call's own duration
		}
		dsp.Annotate("coalesced", strconv.FormatBool(!led))
		if n := ticket.Fanout(); n > 1 {
			dsp.Annotate("fanout", strconv.Itoa(n))
		}
	}
	if oc.Elapsed == 0 {
		oc.Elapsed = opts.Now().Sub(start)
	}
	// Dispatch-level failures (shed, fast-drained, doomed, closed) end
	// the dispatch span; wire failures belong to the query span only.
	if errors.Is(err, dispatch.ErrQueueFull) || errors.Is(err, dispatch.ErrRefused) ||
		errors.Is(err, dispatch.ErrDeadline) || errors.Is(err, dispatch.ErrClosed) {
		dsp.End(err)
	} else {
		dsp.End(nil)
	}
	sp.End(err)
	// Only the batch leader reports a wire outcome to the breaker: N
	// coalesced waiters observed one call, and dispatch-level shedding,
	// refusal or shutdown says nothing new about the source's health. The
	// breaker admitted every caller here, though, so a call with no wire
	// outcome to report must still release its claim (on breakers that
	// support it) — otherwise a half-open probe that was shed or that
	// joined another batch would leave its circuit stuck refusing traffic.
	// On the multiplexed path one wire call serves several batch members,
	// so a shared failure must Record once: only the member whose failure
	// is the call's primary fault (Ticket.FaultPrimary) charges the
	// breaker; its groupmates Release instead.
	if opts.Breaker != nil {
		if led && (err == nil || ticket == nil || ticket.FaultPrimary()) &&
			!errors.Is(err, dispatch.ErrQueueFull) && !errors.Is(err, dispatch.ErrRefused) &&
			!errors.Is(err, dispatch.ErrDeadline) && !errors.Is(err, dispatch.ErrClosed) {
			opts.Breaker.Record(id, err)
		} else if rel, ok := opts.Breaker.(interface{ Release(id string) }); ok {
			rel.Release(id)
		}
	}
	m.metrics.Counter(obs.L("starts_source_queries_total", "source", id)).Inc()
	m.metrics.Histogram(obs.L("starts_source_query_seconds", "source", id)).Observe(oc.Elapsed)
	if err != nil {
		oc.Err = fmt.Errorf("core: querying %s: %w", id, err)
		m.stats.record(id, oc.Elapsed, true, 0)
		m.metrics.Counter(obs.L("starts_source_query_errors_total", "source", id)).Inc()
		return oc
	}
	if ticket.Fanout() > 1 {
		// The batch served several waiters, so the Results value is
		// shared across searches; rank merging mutates documents (source
		// attributions, best-score promotion), so each waiter gets its
		// own copy.
		res = res.Clone()
	}
	oc.Results = res
	sp.Annotate("docs", strconv.Itoa(len(res.Documents)))
	m.stats.record(id, oc.Elapsed, false, len(res.Documents))
	return oc
}

// RankedIDs is a convenience: the IDs of a Ranked slice in order.
func RankedIDs(rs []gloss.Ranked) []string {
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}
