// Package core implements the metasearcher — the client the STARTS
// protocol exists to serve. It performs the paper's three metasearch
// tasks end to end: it harvests source metadata and content summaries
// (caching them until their DateExpires), chooses the best sources for
// each query with a GlOSS-style selector, translates the query per source
// from the harvested metadata, evaluates it at the chosen sources
// concurrently, and merges the returned ranks into a single answer,
// optionally verifying dropped query parts client-side.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"starts/internal/client"
	"starts/internal/gloss"
	"starts/internal/merge"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/translate"
)

// Options configure a metasearcher.
type Options struct {
	// Selector ranks sources per query; default vGlOSS Sum(0).
	Selector gloss.Selector
	// Merger fuses per-source ranks; default TermStats re-ranking.
	Merger merge.Strategy
	// MaxSources bounds how many sources a query contacts; 0 contacts
	// every source with non-zero estimated goodness.
	MaxSources int
	// Timeout is the per-source query deadline; default 15s.
	Timeout time.Duration
	// Budget bounds one whole Search call — harvesting plus fan-out —
	// independently of the per-source Timeout; 0 sets no overall
	// deadline. With a budget, a pathological fleet degrades the answer
	// instead of stacking per-source timeouts.
	Budget time.Duration
	// Breaker, when set, is consulted before fan-out: sources it refuses
	// are skipped (reported in Answer.Degraded) and every query outcome
	// is fed back to it. resilient.NewBreaker provides one.
	Breaker BreakerGate
	// PostFilter enables verification mode: results are re-checked
	// against query parts a source could not evaluate.
	PostFilter bool
	// Now overrides the clock, for cache-expiry tests.
	Now func() time.Time
}

// Metasearcher provides a unified query interface over many STARTS
// sources.
type Metasearcher struct {
	opts Options

	mu      sync.RWMutex
	conns   map[string]client.Conn
	order   []string
	entries map[string]*entry

	stats *statsBook
}

// BreakerGate admits or refuses traffic to sources. It is satisfied by
// resilient.Breaker; core defines only the interface so the dependency
// points outward.
type BreakerGate interface {
	// Allow reports whether the source may be contacted now.
	Allow(id string) bool
	// Record feeds back a contact's outcome (nil err = success).
	Record(id string, err error)
}

// entry is one source's harvested state. Entries are immutable once
// published in Metasearcher.entries — refreshes (including stale-if-error
// marking) swap in a new entry, so readers may use one after dropping
// the lock.
type entry struct {
	meta      *meta.SourceMeta
	summary   *meta.ContentSummary
	harvested time.Time
	// stale marks an entry served past its DateExpires because a refresh
	// failed (stale-if-error): better an aging summary than no source.
	stale bool
}

// New returns a metasearcher with the given options.
func New(opts Options) *Metasearcher {
	if opts.Selector == nil {
		opts.Selector = gloss.VSum{}
	}
	if opts.Merger == nil {
		opts.Merger = merge.TermStats{}
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 15 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Metasearcher{
		opts:    opts,
		conns:   map[string]client.Conn{},
		entries: map[string]*entry{},
		stats:   newStatsBook(),
	}
}

// SetSelector replaces the source-selection strategy.
func (m *Metasearcher) SetSelector(s gloss.Selector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.opts.Selector = s
}

// SetMerger replaces the rank-merging strategy.
func (m *Metasearcher) SetMerger(s merge.Strategy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.opts.Merger = s
}

// SetMaxSources changes how many sources a query contacts (0 = all
// promising ones).
func (m *Metasearcher) SetMaxSources(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.opts.MaxSources = n
}

// Add registers a source connection. Re-adding an ID replaces the
// connection and invalidates its harvested state.
func (m *Metasearcher) Add(c client.Conn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := c.SourceID()
	if _, known := m.conns[id]; !known {
		m.order = append(m.order, id)
	}
	m.conns[id] = c
	delete(m.entries, id)
}

// SourceIDs lists registered sources in registration order.
func (m *Metasearcher) SourceIDs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.order...)
}

// expired reports whether a harvested entry must be refreshed.
func (m *Metasearcher) expired(e *entry) bool {
	if e == nil {
		return true
	}
	exp := e.meta.DateExpires
	return !exp.IsZero() && m.opts.Now().After(exp)
}

// Harvest fetches metadata and content summaries for every source whose
// cached copy is missing or expired (per its DateExpires), concurrently.
// It returns the first error encountered, after attempting all sources.
func (m *Metasearcher) Harvest(ctx context.Context) error {
	for _, err := range m.harvestAll(ctx) {
		if err != nil {
			return err
		}
	}
	return nil
}

// harvestAll refreshes every stale source and returns the per-source
// errors; healthy sources are cached regardless of their siblings.
func (m *Metasearcher) harvestAll(ctx context.Context) map[string]error {
	m.mu.RLock()
	var stale []string
	for _, id := range m.order {
		if m.expired(m.entries[id]) {
			stale = append(stale, id)
		}
	}
	m.mu.RUnlock()

	var wg sync.WaitGroup
	errs := make([]error, len(stale))
	for i, id := range stale {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			errs[i] = m.harvestOne(ctx, id)
		}(i, id)
	}
	wg.Wait()
	out := map[string]error{}
	for i, id := range stale {
		if errs[i] != nil {
			out[id] = errs[i]
		}
	}
	return out
}

func (m *Metasearcher) harvestOne(ctx context.Context, id string) error {
	m.mu.RLock()
	conn := m.conns[id]
	m.mu.RUnlock()
	if conn == nil {
		return fmt.Errorf("core: unknown source %q", id)
	}
	md, err := conn.Metadata(ctx)
	if err != nil {
		m.keepStale(id)
		return fmt.Errorf("core: harvesting metadata of %s: %w", id, err)
	}
	sum, err := conn.Summary(ctx)
	if err != nil {
		m.keepStale(id)
		return fmt.Errorf("core: harvesting summary of %s: %w", id, err)
	}
	m.mu.Lock()
	m.entries[id] = &entry{meta: md, summary: sum, harvested: m.opts.Now()}
	m.mu.Unlock()
	return nil
}

// keepStale implements stale-if-error harvesting: when a refresh fails
// but an old entry exists, the old entry stays in service marked stale.
// Entries are immutable after publish, so marking means swapping in a
// copy.
func (m *Metasearcher) keepStale(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.entries[id]; e != nil && !e.stale {
		stale := *e
		stale.stale = true
		m.entries[id] = &stale
	}
}

// Harvested returns the cached metadata and summary for a source.
func (m *Metasearcher) Harvested(id string) (*meta.SourceMeta, *meta.ContentSummary, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[id]
	if !ok {
		return nil, nil, false
	}
	return e.meta, e.summary, true
}

// SourceOutcome records one contacted source's part of an answer.
type SourceOutcome struct {
	// Sent is the translated query actually submitted.
	Sent *query.Query
	// Report describes what translation dropped.
	Report *translate.Report
	// Results are the source's results (nil on error).
	Results *result.Results
	// Err is the per-source failure, if any; other sources still answer.
	Err error
	// Elapsed is the source's response time.
	Elapsed time.Duration
	// Stale marks an outcome computed from metadata kept past its
	// DateExpires because a refresh failed (stale-if-error).
	Stale bool
}

// Degradation reports how an answer fell short of a clean fan-out, so
// callers can tell a complete answer from a best-effort one. All lists
// are sorted by source ID.
type Degradation struct {
	// Skipped lists sources not contacted because their circuit breaker
	// refused traffic.
	Skipped []string
	// Stale lists contacted sources answered from metadata kept past its
	// DateExpires because a refresh failed.
	Stale []string
	// Failed lists contacted sources whose query failed.
	Failed []string
	// HarvestFailed lists sources with no usable harvest, not even a
	// stale one.
	HarvestFailed []string
}

// Any reports whether the answer degraded at all.
func (d Degradation) Any() bool {
	return len(d.Skipped)+len(d.Stale)+len(d.Failed)+len(d.HarvestFailed) > 0
}

// String summarizes the degradation for logs and shells.
func (d Degradation) String() string {
	if !d.Any() {
		return "none"
	}
	return fmt.Sprintf("skipped=%v stale=%v failed=%v harvest-failed=%v",
		d.Skipped, d.Stale, d.Failed, d.HarvestFailed)
}

// Answer is a merged metasearch result.
type Answer struct {
	// Documents is the fused rank, best first.
	Documents []*result.Document
	// Selected lists every source in estimated-goodness order, including
	// those not contacted.
	Selected []gloss.Ranked
	// Contacted lists the sources queried, in selection order.
	Contacted []string
	// PerSource holds each contacted source's outcome.
	PerSource map[string]*SourceOutcome
	// Unverifiable lists dropped terms verification mode could not check.
	Unverifiable []query.Term
	// Degraded reports skipped, stale and failed sources.
	Degraded Degradation
}

// Search runs the full metasearch pipeline for a query. Sources must have
// been harvested first (Search harvests lazily if needed). Per-source
// failures are recorded in the answer, not returned as errors; Search only
// fails if the query is invalid or no source could be contacted.
func (m *Metasearcher) Search(ctx context.Context, q *query.Query) (*Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	opts := m.opts
	m.mu.RUnlock()
	// The budget bounds the whole call — harvesting included — while
	// Timeout below bounds each individual source.
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}
	// Best-effort harvesting: an unreachable source must not block the
	// healthy ones; its error is recorded in the answer instead.
	harvestErrs := m.harvestAll(ctx)

	m.mu.RLock()
	infos := make([]gloss.SourceInfo, 0, len(m.order))
	staleIDs := map[string]bool{}
	for _, id := range m.order {
		e := m.entries[id]
		if e == nil {
			continue // not harvested; its error is in harvestErrs
		}
		staleIDs[id] = e.stale
		infos = append(infos, gloss.SourceInfo{ID: id, Summary: e.summary, Meta: e.meta})
	}
	m.mu.RUnlock()
	if len(infos) == 0 {
		if len(harvestErrs) > 0 {
			return nil, fmt.Errorf("core: no source could be harvested: %w", joinSorted(harvestErrs))
		}
		return nil, fmt.Errorf("core: no sources registered")
	}

	ranked := opts.Selector.Rank(q, infos)
	contacted := pick(ranked, opts.MaxSources)
	if len(contacted) == 0 {
		return nil, fmt.Errorf("core: no promising sources for query (of %d registered)", len(infos))
	}

	answer := &Answer{Selected: ranked, PerSource: map[string]*SourceOutcome{}}
	for id, err := range harvestErrs {
		answer.PerSource[id] = &SourceOutcome{Err: fmt.Errorf("core: harvesting %s: %w", id, err)}
		if !staleIDs[id] {
			answer.Degraded.HarvestFailed = append(answer.Degraded.HarvestFailed, id)
		}
	}
	// Consult the breaker before fan-out: refused sources are skipped,
	// degrading the answer instead of waiting out another timeout.
	if opts.Breaker != nil {
		admitted := contacted[:0]
		for _, id := range contacted {
			if opts.Breaker.Allow(id) {
				admitted = append(admitted, id)
				continue
			}
			answer.Degraded.Skipped = append(answer.Degraded.Skipped, id)
			answer.PerSource[id] = &SourceOutcome{Err: fmt.Errorf("core: source %s skipped: circuit open", id)}
		}
		contacted = admitted
	}
	answer.Contacted = contacted
	outcomes := m.fanOut(ctx, q, contacted, opts)

	var inputs []merge.SourceResult
	for _, id := range contacted {
		oc := outcomes[id]
		answer.PerSource[id] = oc
		if oc.Stale {
			answer.Degraded.Stale = append(answer.Degraded.Stale, id)
		}
		if oc.Err != nil || oc.Results == nil {
			if oc.Err != nil {
				answer.Degraded.Failed = append(answer.Degraded.Failed, id)
			}
			continue
		}
		docs := oc.Results.Documents
		if opts.PostFilter && oc.Report != nil && len(oc.Report.DroppedTerms) > 0 {
			kept, unver := translate.PostFilter(docs, oc.Report.DroppedTerms)
			oc.Results.Documents = kept
			answer.Unverifiable = append(answer.Unverifiable, unver...)
		}
		md, sum, _ := m.Harvested(id)
		inputs = append(inputs, merge.SourceResult{
			SourceID: id, Meta: md, Summary: sum, Results: oc.Results,
		})
	}
	answer.Degraded.sort()
	if len(inputs) == 0 {
		// Every contacted source failed outright: surface the errors —
		// unless the breaker shed some sources, in which case a degraded
		// empty answer is the honest result and the caller can retry
		// after the cooldown.
		failures := map[string]error{}
		for _, id := range contacted {
			if oc := outcomes[id]; oc.Err != nil {
				failures[id] = oc.Err
			}
		}
		if len(failures) > 0 && len(answer.Degraded.Skipped) == 0 {
			return nil, fmt.Errorf("core: all %d contacted sources failed: %w", len(contacted), joinSorted(failures))
		}
		return answer, nil
	}

	answer.Documents = opts.Merger.Merge(q, inputs)
	if max := q.EffectiveMaxResults(); len(answer.Documents) > max {
		answer.Documents = answer.Documents[:max]
	}
	return answer, nil
}

// joinSorted aggregates per-source errors deterministically, sorted by
// source ID.
func joinSorted(errsByID map[string]error) error {
	ids := make([]string, 0, len(errsByID))
	for id := range errsByID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	joined := make([]error, len(ids))
	for i, id := range ids {
		joined[i] = fmt.Errorf("%s: %w", id, errsByID[id])
	}
	return errors.Join(joined...)
}

// sort orders every degradation list by source ID.
func (d *Degradation) sort() {
	sort.Strings(d.Skipped)
	sort.Strings(d.Stale)
	sort.Strings(d.Failed)
	sort.Strings(d.HarvestFailed)
}

// pick keeps the sources worth contacting: positive estimated goodness,
// capped at maxSources. If the selector assigns no positive goodness at
// all (e.g. the random baseline), every source is eligible.
func pick(ranked []gloss.Ranked, maxSources int) []string {
	anyPositive := false
	for _, r := range ranked {
		if r.Goodness > 0 {
			anyPositive = true
			break
		}
	}
	var ids []string
	for _, r := range ranked {
		if anyPositive && r.Goodness <= 0 {
			continue
		}
		ids = append(ids, r.ID)
		if maxSources > 0 && len(ids) >= maxSources {
			break
		}
	}
	return ids
}

// fanOut queries the chosen sources concurrently under the per-source
// timeout.
func (m *Metasearcher) fanOut(ctx context.Context, q *query.Query, ids []string, opts Options) map[string]*SourceOutcome {
	outcomes := make(map[string]*SourceOutcome, len(ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			oc := m.queryOne(ctx, q, id, opts)
			mu.Lock()
			outcomes[id] = oc
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	return outcomes
}

func (m *Metasearcher) queryOne(ctx context.Context, q *query.Query, id string, opts Options) *SourceOutcome {
	oc := &SourceOutcome{}
	m.mu.RLock()
	conn := m.conns[id]
	e := m.entries[id]
	m.mu.RUnlock()
	if conn == nil || e == nil {
		oc.Err = fmt.Errorf("core: source %q not harvested", id)
		return oc
	}
	oc.Stale = e.stale
	oc.Sent, oc.Report = translate.ForSource(q, e.meta)
	if oc.Sent.Filter == nil && oc.Sent.Ranking == nil {
		oc.Err = fmt.Errorf("core: nothing of the query survives translation for %s", id)
		return oc
	}
	cctx, cancel := context.WithTimeout(ctx, opts.Timeout)
	defer cancel()
	start := time.Now()
	res, err := conn.Query(cctx, oc.Sent)
	oc.Elapsed = time.Since(start)
	if opts.Breaker != nil {
		opts.Breaker.Record(id, err)
	}
	if err != nil {
		oc.Err = fmt.Errorf("core: querying %s: %w", id, err)
		m.stats.record(id, oc.Elapsed, true, 0)
		return oc
	}
	oc.Results = res
	m.stats.record(id, oc.Elapsed, false, len(res.Documents))
	return oc
}

// RankedIDs is a convenience: the IDs of a Ranked slice in order.
func RankedIDs(rs []gloss.Ranked) []string {
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}
