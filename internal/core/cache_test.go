package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/obs"
	"starts/internal/qcache"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// blockingConn counts Query fan-outs and optionally parks each one on a
// gate, so tests can hold a fill in flight while other callers arrive.
type blockingConn struct {
	client.Conn
	queries atomic.Int64
	gate    func()
}

func (c *blockingConn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	c.queries.Add(1)
	if c.gate != nil {
		c.gate()
	}
	return c.Conn.Query(ctx, q)
}

// cachedFleet builds a one-source metasearcher fronted by a query cache
// built from cfg, returning the counting conn so tests can assert how
// many fan-outs actually reached the source.
func cachedFleet(t *testing.T, cfg qcache.Config) (*Metasearcher, *blockingConn, *qcache.Cache) {
	t.Helper()
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := source.New("cs", eng)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Add(&index.Document{
		Linkage: "http://cs/a", Title: "cs paper a",
		Body: "distributed databases query processing metasearch",
		Date: time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := qcache.New(cfg)
	conn := &blockingConn{Conn: client.NewLocalConn(s, nil)}
	ms := New(Options{Timeout: 5 * time.Second, Cache: cache})
	ms.Add(conn)
	return ms, conn, cache
}

// TestSearchCoalescesConcurrentQueries is the acceptance test for
// singleflight coalescing: 50 goroutines issuing the same query produce
// exactly one fan-out; the other 49 are counted as coalesced.
func TestSearchCoalescesConcurrentQueries(t *testing.T) {
	const callers = 50
	reg := obs.NewRegistry()
	ms, conn, _ := cachedFleet(t, qcache.Config{Metrics: reg})
	coalesced := reg.Counter(obs.MQCacheCoalesced)

	// The leader's fan-out parks until all 49 joiners have arrived (each
	// one increments the coalesced counter the moment it joins), so no
	// caller can miss the flight and start a second fan-out.
	release := make(chan struct{})
	conn.gate = func() { <-release }
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for coalesced.Value() < callers-1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		close(release)
	}()

	var wg sync.WaitGroup
	errs := make([]error, callers)
	answers := make([]*Answer, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := rankingQuery(t, `list((body-of-text "databases"))`)
			answers[i], errs[i] = ms.Search(context.Background(), q)
		}(i)
	}
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if answers[i] == nil || len(answers[i].Documents) == 0 {
			t.Fatalf("caller %d: empty answer", i)
		}
	}
	if got := conn.queries.Load(); got != 1 {
		t.Errorf("source queried %d times, want exactly 1 fan-out", got)
	}
	if got := coalesced.Value(); got != callers-1 {
		t.Errorf("%s = %v, want %d", obs.MQCacheCoalesced, got, callers-1)
	}
}

// TestSearchCacheHit: the second identical search is served from cache
// without touching the source, and WithNoCache forces the pipeline.
func TestSearchCacheHit(t *testing.T) {
	reg := obs.NewRegistry()
	ms, conn, _ := cachedFleet(t, qcache.Config{Metrics: reg})
	ctx := context.Background()
	mk := func() *query.Query { return rankingQuery(t, `list((body-of-text "databases"))`) }

	first, err := ms.Search(ctx, mk())
	if err != nil {
		t.Fatal(err)
	}
	second, err := ms.Search(ctx, mk())
	if err != nil {
		t.Fatal(err)
	}
	if got := conn.queries.Load(); got != 1 {
		t.Errorf("source queried %d times across two identical searches, want 1", got)
	}
	if reg.Counter(obs.MQCacheHits).Value() != 1 {
		t.Errorf("%s = %v, want 1", obs.MQCacheHits, reg.Counter(obs.MQCacheHits).Value())
	}
	if second.Degraded.StaleAnswer {
		t.Errorf("fresh hit marked stale")
	}
	if second.Trace == first.Trace {
		t.Errorf("cached answer shares the filling call's trace")
	}

	// WithNoCache bypasses both lookup and store.
	if _, err := ms.Search(ctx, mk(), WithNoCache()); err != nil {
		t.Fatal(err)
	}
	if got := conn.queries.Load(); got != 2 {
		t.Errorf("WithNoCache did not reach the source (queries=%d)", got)
	}
}

// TestSearchStaleWhileRevalidate: past the TTL but inside the stale
// window, Search answers immediately from the expired entry — marked via
// Answer.Degraded.StaleAnswer — while one background refresh runs.
func TestSearchStaleWhileRevalidate(t *testing.T) {
	var mu sync.Mutex
	now := time.Date(1996, 6, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	reg := obs.NewRegistry()
	ms, conn, _ := cachedFleet(t, qcache.Config{TTL: time.Minute, Metrics: reg, Now: clock})
	ctx := context.Background()
	mk := func() *query.Query { return rankingQuery(t, `list((body-of-text "databases"))`) }

	if _, err := ms.Search(ctx, mk()); err != nil {
		t.Fatal(err)
	}
	advance(2 * time.Minute) // expired, but inside the 4×TTL stale window

	ans, err := ms.Search(ctx, mk())
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Degraded.StaleAnswer {
		t.Errorf("stale serve not marked: Degraded = %+v", ans.Degraded)
	}
	if !ans.Degraded.Any() {
		t.Errorf("Degraded.Any() = false with StaleAnswer set")
	}
	if reg.Counter(obs.MQCacheStale).Value() != 1 {
		t.Errorf("%s = %v, want 1", obs.MQCacheStale, reg.Counter(obs.MQCacheStale).Value())
	}

	// The background refresh re-runs the pipeline exactly once.
	deadline := time.Now().Add(5 * time.Second)
	for conn.queries.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := conn.queries.Load(); got != 2 {
		t.Fatalf("background refresh did not run (queries=%d)", got)
	}

	// Wait for the refreshed entry to land, then expect a fresh hit.
	var fresh *Answer
	for time.Now().Before(deadline) {
		if fresh, err = ms.Search(ctx, mk()); err != nil {
			t.Fatal(err)
		}
		if !fresh.Degraded.StaleAnswer {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if fresh.Degraded.StaleAnswer {
		t.Errorf("answer still stale after refresh completed")
	}
	if got := conn.queries.Load(); got != 2 {
		t.Errorf("post-refresh search reran the pipeline (queries=%d)", got)
	}
}

// TestSearchShedsUnderOverload: with one fill slot held, a second
// distinct query is rejected with qcache.ErrShed within the queue
// timeout instead of piling up behind the slow fan-out.
func TestSearchShedsUnderOverload(t *testing.T) {
	const queueTimeout = 50 * time.Millisecond
	reg := obs.NewRegistry()
	ms, conn, _ := cachedFleet(t, qcache.Config{
		MaxInflight:  1,
		QueueTimeout: queueTimeout,
		Metrics:      reg,
	})

	// Hold the only fill slot with a slow fan-out.
	release := make(chan struct{})
	conn.gate = func() { <-release }
	slowDone := make(chan error, 1)
	go func() {
		_, err := ms.Search(context.Background(), rankingQuery(t, `list((body-of-text "databases"))`))
		slowDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for conn.queries.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if conn.queries.Load() == 0 {
		t.Fatal("slow fill never started")
	}

	// A different query cannot coalesce and must be shed, promptly.
	start := time.Now()
	_, err := ms.Search(context.Background(), rankingQuery(t, `list((body-of-text "metasearch"))`))
	elapsed := time.Since(start)
	if !errors.Is(err, qcache.ErrShed) {
		t.Fatalf("overloaded search returned %v, want qcache.ErrShed", err)
	}
	if elapsed > 10*queueTimeout {
		t.Errorf("shed took %v, want within ~%v", elapsed, queueTimeout)
	}
	if got := reg.Counter(obs.MQCacheShed).Value(); got != 1 {
		t.Errorf("%s = %v, want 1", obs.MQCacheShed, got)
	}

	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow search failed after release: %v", err)
	}
}

// TestCacheKeySeparatesConfigurations: the same query under a different
// source-cap or verification mode must not share a cache entry.
func TestCacheKeySeparatesConfigurations(t *testing.T) {
	ms, conn, _ := cachedFleet(t, qcache.Config{})
	ctx := context.Background()
	mk := func() *query.Query { return rankingQuery(t, `list((body-of-text "databases"))`) }

	if _, err := ms.Search(ctx, mk()); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Search(ctx, mk(), WithPostFilter(true)); err != nil {
		t.Fatal(err)
	}
	if got := conn.queries.Load(); got != 2 {
		t.Errorf("verification mode shared the unverified cache entry (queries=%d)", got)
	}
	if _, err := ms.Search(ctx, mk(), WithMaxSources(1)); err != nil {
		t.Fatal(err)
	}
	if got := conn.queries.Load(); got != 3 {
		t.Errorf("source cap shared the uncapped cache entry (queries=%d)", got)
	}
}
