package core

import (
	"context"
	"time"

	"starts/internal/dispatch"
)

// HarvestDue refreshes every source whose harvested metadata is missing,
// marked stale by a failed refresh, already expired, or expiring within
// lead — the incremental-harvesting discipline of OAI-style repositories
// applied to STARTS metadata: instead of re-pulling the whole fleet,
// each sweep touches only the sources whose DateExpires says their turn
// has come. Refreshes run concurrently through the dispatch layer under
// the "harvest" key, so a sweep never duplicates a fetch a concurrent
// search already has in flight. It returns the per-source errors for
// the sources that were due (empty when nothing was).
func (m *Metasearcher) HarvestDue(ctx context.Context, lead time.Duration) map[string]error {
	m.mu.RLock()
	lim := dispatch.Limits{Concurrency: m.opts.SourceConcurrency, QueueDepth: m.opts.QueueDepth, MaxBatchWire: m.opts.MaxBatchWire}
	now := m.opts.Now()
	var due []string
	for _, id := range m.order {
		if harvestDue(m.entries[id], now, lead) {
			due = append(due, id)
		}
	}
	m.mu.RUnlock()
	m.metrics.Counter("starts_harvester_due_total").Add(int64(len(due)))
	errs := m.harvestIDs(ctx, lim, due)
	out := make(map[string]error, len(due))
	for _, id := range due {
		out[id] = errs[id]
		if errs[id] != nil {
			m.metrics.Counter("starts_harvester_errors_total").Inc()
		}
	}
	return out
}

// harvestDue reports whether an entry needs a scheduled refresh at now,
// looking lead ahead so an entry expiring before the next sweep is
// renewed by this one. Entries without a DateExpires never expire and
// are only re-pulled if a failed refresh left them marked stale.
func harvestDue(e *entry, now time.Time, lead time.Duration) bool {
	if e == nil || e.stale {
		return true
	}
	exp := e.meta.DateExpires
	return !exp.IsZero() && now.Add(lead).After(exp)
}

// StartHarvester runs HarvestDue every interval until ctx ends, keeping
// source metadata and content summaries continuously fresh instead of
// re-harvesting lazily at search time. A lead of 0 defaults to twice
// the interval (an entry expiring between two sweeps is caught by the
// earlier one); an interval of 0 defaults to one minute. The returned
// channel closes when the harvester has stopped.
func (m *Metasearcher) StartHarvester(ctx context.Context, interval, lead time.Duration) <-chan struct{} {
	if interval <= 0 {
		interval = time.Minute
	}
	if lead <= 0 {
		lead = 2 * interval
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				m.metrics.Counter("starts_harvester_ticks_total").Inc()
				m.HarvestDue(ctx, lead)
			}
		}
	}()
	return done
}
