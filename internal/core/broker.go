package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"starts/internal/attr"
	"starts/internal/client"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// Broker exposes a metasearcher as a STARTS source connection, enabling
// broker hierarchies: a higher-level metasearcher can harvest and query
// this one exactly as it would any single source (the GlOSS companion
// paper [8] studies precisely such hierarchies, and Harvest brokers
// likewise feed other brokers). The broker's exported metadata advertises
// a full-featured profile — members that support less are handled by the
// inner metasearcher's own translation — and its content summary is the
// aggregation of the members' summaries.
type Broker struct {
	id string
	ms *Metasearcher
}

// NewBroker wraps the metasearcher under the given source ID.
func (m *Metasearcher) NewBroker(id string) (*Broker, error) {
	if id == "" || strings.ContainsAny(id, " \t\n") {
		return nil, fmt.Errorf("core: invalid broker id %q", id)
	}
	return &Broker{id: id, ms: m}, nil
}

var _ client.Conn = (*Broker)(nil)

// SourceID implements client.Conn.
func (b *Broker) SourceID() string { return b.id }

// Metadata implements client.Conn: the broker accepts both query parts,
// every optional text field, and the common modifiers; its score range is
// unbounded because merged scores depend on the merge strategy.
func (b *Broker) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	if err := b.ms.Harvest(ctx); err != nil {
		return nil, err
	}
	m := &meta.SourceMeta{
		SourceID:              b.id,
		SourceName:            "broker over " + strings.Join(b.ms.SourceIDs(), ", "),
		QueryParts:            meta.PartsBoth,
		ScoreMin:              0,
		ScoreMax:              math.Inf(1),
		RankingAlgorithmID:    "broker-" + b.mergerName(),
		TurnOffStopWords:      true,
		Linkage:               "starts-broker://" + b.id + "/query",
		ContentSummaryLinkage: "starts-broker://" + b.id + "/summary",
		SampleDatabaseResults: "starts-broker://" + b.id + "/sample",
	}
	for _, fi := range attr.Basic1Fields() {
		if fi.Required || fi.Field == attr.FieldFreeFormText {
			continue
		}
		m.FieldsSupported = append(m.FieldsSupported, meta.FieldSupport{
			Set: attr.SetBasic1, Field: fi.Field,
		})
	}
	for _, mod := range []attr.Modifier{
		attr.ModLT, attr.ModLE, attr.ModEQ, attr.ModGE, attr.ModGT, attr.ModNE,
		attr.ModStem, attr.ModPhonetic, attr.ModRightTruncation, attr.ModLeftTruncation,
	} {
		m.ModifiersSupported = append(m.ModifiersSupported, meta.ModifierSupport{
			Set: attr.SetBasic1, Mod: mod,
		})
		fields := append([]attr.Field{attr.FieldTitle, attr.FieldAny}, attr.FieldAuthor, attr.FieldBodyOfText)
		if mod.IsComparison() && mod != attr.ModEQ {
			fields = []attr.Field{attr.FieldDateLastModified}
		}
		for _, f := range fields {
			m.Combinations = append(m.Combinations, meta.Combination{
				Field: meta.FieldSupport{Set: attr.SetBasic1, Field: f},
				Mod:   meta.ModifierSupport{Set: attr.SetBasic1, Mod: mod},
			})
		}
	}
	return m, nil
}

func (b *Broker) mergerName() string {
	b.ms.mu.RLock()
	defer b.ms.mu.RUnlock()
	return b.ms.opts.Merger.Name()
}

// Summary implements client.Conn: the member summaries aggregated into
// one, with document frequencies summed per (field, term). The flag bits
// take the weakest common guarantees (stemmed if any member stems,
// case-insensitive if any member folds).
func (b *Broker) Summary(ctx context.Context) (*meta.ContentSummary, error) {
	if err := b.ms.Harvest(ctx); err != nil {
		return nil, err
	}
	agg := &meta.ContentSummary{StopWordsIncluded: true, FieldsQualified: true, CaseSensitive: true}
	type key struct {
		field attr.Field
		term  string
	}
	totals := map[key]*meta.TermInfo{}
	var order []key
	for _, id := range b.ms.SourceIDs() {
		_, sum, ok := b.ms.Harvested(id)
		if !ok {
			continue
		}
		agg.NumDocs += sum.NumDocs
		if sum.Stemming {
			agg.Stemming = true
		}
		if !sum.CaseSensitive {
			agg.CaseSensitive = false
		}
		if !sum.StopWordsIncluded {
			agg.StopWordsIncluded = false
		}
		for _, g := range sum.Groups {
			f := g.Field
			if !sum.FieldsQualified {
				f = attr.FieldAny
			}
			for _, ti := range g.Terms {
				k := key{field: f, term: ti.Term}
				cur := totals[k]
				if cur == nil {
					cp := ti
					totals[k] = &cp
					order = append(order, k)
					continue
				}
				cur.Postings += ti.Postings
				cur.DocFreq += ti.DocFreq
			}
		}
	}
	byField := map[attr.Field]*meta.SummaryGroup{}
	var fields []attr.Field
	for _, k := range order {
		g := byField[k.field]
		if g == nil {
			g = &meta.SummaryGroup{Field: k.field}
			byField[k.field] = g
			fields = append(fields, k.field)
		}
		g.Terms = append(g.Terms, *totals[k])
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i] < fields[j] })
	for _, f := range fields {
		agg.Groups = append(agg.Groups, *byField[f])
	}
	agg.SortTerms()
	return agg, nil
}

// Sample implements client.Conn: the broker has no single engine, so it
// reports the sample results of a reference evaluation — the first
// member's samples merged through the broker's strategy would require
// per-query fan-out; instead the broker runs the canonical sample queries
// through itself over the canonical collection held by a throwaway
// member. For simplicity and honesty, brokers report no samples.
func (b *Broker) Sample(context.Context) ([]*source.SampleEntry, error) {
	return nil, fmt.Errorf("core: broker %s exports no sample-database results", b.id)
}

// Query implements client.Conn: the query runs through the inner
// metasearcher and the merged answer is repackaged as a STARTS result,
// with every contributing member listed in the header.
func (b *Broker) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	ans, err := b.ms.Search(ctx, q)
	if err != nil {
		return nil, err
	}
	return b.repackage(q, ans), nil
}

// repackage renders a merged answer as a STARTS result, with every
// contributing member listed in the header.
func (b *Broker) repackage(q *query.Query, ans *Answer) *result.Results {
	res := &result.Results{Sources: []string{b.id}}
	res.Sources = append(res.Sources, ans.Contacted...)
	// The broker's "actual query" is the original: member deviations were
	// already compensated by translation and merging.
	res.ActualFilter = q.Filter
	res.ActualRanking = q.Ranking
	res.Documents = ans.Documents
	return res
}

// QueryStream implements client.StreamConn: the query runs through the
// inner metasearcher's streaming search, each rank-stable slice of the
// merged answer reaching sink as a document frame the moment the
// incremental merge proves it final — including the terminal remainder
// — followed by one terminal frame carrying the complete repackaged
// result, exactly what Query would have returned. A sink error stops
// delivery; the search still completes and the final result is
// returned alongside the sink's error.
func (b *Broker) QueryStream(ctx context.Context, q *query.Query, sink func(result.StreamItem) error) (*result.Results, error) {
	var sinkErr error
	ans, err := b.ms.SearchStream(ctx, q, func(ev StreamEvent) error {
		if len(ev.Docs) == 0 {
			return nil // per-source events that stabilized nothing
		}
		if err := sink(result.StreamItem{Rank: ev.Rank, Docs: ev.Docs}); err != nil {
			sinkErr = err
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := b.repackage(q, ans)
	if sinkErr != nil {
		return res, sinkErr
	}
	if err := sink(result.StreamItem{Final: res}); err != nil {
		return res, err
	}
	return res, nil
}
