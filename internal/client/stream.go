package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"

	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/soif"
)

// StreamConn is a Conn that can deliver a query's answer incrementally:
// sink receives each @SQStreamItem frame as it arrives — rank-stable
// document slices first, one terminal frame last — and QueryStream then
// returns the complete final answer, identical to what Query would have
// returned. A nil sink degrades to Query semantics over the streaming
// wire. If the sink returns an error, delivery stops and QueryStream
// returns that error (the final answer, when already decoded, comes
// with it).
//
// Capability assertion: like BatchConn, middlewares that wrap a
// StreamConn should implement QueryStream themselves, or the chain
// silently downgrades to buffered queries.
type StreamConn interface {
	Conn
	// QueryStream evaluates q, delivering frames to sink as they arrive.
	QueryStream(ctx context.Context, q *query.Query, sink func(result.StreamItem) error) (*result.Results, error)
}

// StreamURL derives a source's streaming query endpoint from its
// (metadata-declared) query URL: the same route, asked to frame its
// response incrementally.
func StreamURL(queryURL string) string {
	sep := "?"
	if bytes.ContainsRune([]byte(queryURL), '?') {
		sep = "&"
	}
	return queryURL + sep + "stream=1"
}

// QueryStream submits q to a source's streaming query URL and decodes
// the @SQStreamItem frames off the wire as the server flushes them, so
// sink sees the first rank-stable documents while the source (or the
// broker fan-out behind it) is still working on the rest. It returns
// the terminal frame's complete answer. Unlike Query, the response body
// is never buffered whole before decoding — that buffering is exactly
// what streaming exists to avoid.
func (c *Client) QueryStream(ctx context.Context, url string, q *query.Query, sink func(result.StreamItem) error) (*result.Results, error) {
	body, err := q.Marshal()
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-soif")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<10))
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, &StatusError{
			Method: req.Method, URL: req.URL.String(),
			StatusCode: resp.StatusCode, Status: resp.Status,
			Snippet: truncate(snippet),
		}
	}
	dec := soif.NewDecoder(io.LimitReader(resp.Body, maxResponseBytes))
	var final *result.Results
	for {
		it, err := result.DecodeStreamItem(dec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("client: streaming %s: %w", req.URL, err)
		}
		if it.Err != nil {
			return nil, it.Err
		}
		if sink != nil {
			if serr := sink(*it); serr != nil {
				return final, serr
			}
		}
		if it.Final != nil {
			final = it.Final
		}
	}
	if final == nil {
		return nil, fmt.Errorf("client: streaming %s: response ended without a terminal answer", req.URL)
	}
	return final, nil
}

// QueryStream implements StreamConn over the wire.
func (h *HTTPConn) QueryStream(ctx context.Context, q *query.Query, sink func(result.StreamItem) error) (*result.Results, error) {
	m, err := h.meta(ctx)
	if err != nil {
		return nil, err
	}
	return h.client.QueryStream(ctx, StreamURL(m.Linkage), q, sink)
}

// QueryStream implements StreamConn for in-process sources: the whole
// answer is available at once, so the stream is a single terminal frame
// — the degenerate stream every consumer must accept anyway.
func (l *LocalConn) QueryStream(ctx context.Context, q *query.Query, sink func(result.StreamItem) error) (*result.Results, error) {
	rr, err := l.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		if serr := sink(result.StreamItem{Final: rr}); serr != nil {
			return rr, serr
		}
	}
	return rr, nil
}
