package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/soif"
	"starts/internal/source"
)

func batchQueries(t *testing.T, n int) []*query.Query {
	t.Helper()
	qs := make([]*query.Query, n)
	for i := range qs {
		q := query.New()
		r, err := query.ParseRanking(`list((any "term` + string(rune('a'+i)) + `"))`)
		if err != nil {
			t.Fatal(err)
		}
		q.Ranking = r
		qs[i] = q
	}
	return qs
}

// encodeFrames renders batch item frames into a buffer, out of order on
// purpose — completion order is the wire contract, not index order.
func encodeFrames(t *testing.T, frames []struct {
	idx int
	res *result.Results
	err error
}) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := soif.NewEncoder(&buf)
	for _, f := range frames {
		if err := result.EncodeBatchItem(enc, f.idx, f.res, f.err); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

// TestDecodeBatchCompletionOrder decodes a stream whose frames arrive
// out of index order, with one in-band item error.
func TestDecodeBatchCompletionOrder(t *testing.T) {
	qs := batchQueries(t, 3)
	stream := encodeFrames(t, []struct {
		idx int
		res *result.Results
		err error
	}{
		{2, &result.Results{Sources: []string{"S"}}, nil},
		{0, nil, errors.New("engine rejected item")},
		{1, &result.Results{Sources: []string{"S"}}, nil},
	})
	results := make([]*result.Results, 3)
	errs := make([]error, 3)
	var c Client
	c.decodeBatch(stream, qs, results, errs)
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "engine rejected item") {
		t.Errorf("errs[0] = %v, want the in-band item error", errs[0])
	}
	if results[1] == nil || errs[1] != nil {
		t.Errorf("item 1 = (%v, %v), want a result", results[1], errs[1])
	}
	if results[2] == nil || errs[2] != nil {
		t.Errorf("item 2 = (%v, %v), want a result", results[2], errs[2])
	}
}

// TestDecodeBatchMidStreamBreak pins the transport-breakage rule: a
// stream that dies mid-frame fails ONLY the items not yet decoded;
// already-decoded items keep their results.
func TestDecodeBatchMidStreamBreak(t *testing.T) {
	qs := batchQueries(t, 3)
	stream := encodeFrames(t, []struct {
		idx int
		res *result.Results
		err error
	}{
		{0, &result.Results{Sources: []string{"S"}}, nil},
	})
	stream.WriteString("garbage that is not a SOIF frame")
	results := make([]*result.Results, 3)
	errs := make([]error, 3)
	var c Client
	c.decodeBatch(stream, qs, results, errs)
	if results[0] == nil || errs[0] != nil {
		t.Errorf("item 0 = (%v, %v): decoded items must survive a later break", results[0], errs[0])
	}
	for i := 1; i < 3; i++ {
		if errs[i] == nil || !strings.Contains(errs[i].Error(), "broke after 1 of 3") {
			t.Errorf("errs[%d] = %v, want mid-stream break error", i, errs[i])
		}
	}
}

// TestDecodeBatchEarlyEOF pins the short-stream rule: a clean EOF before
// all items arrived fails the missing ones.
func TestDecodeBatchEarlyEOF(t *testing.T) {
	qs := batchQueries(t, 2)
	stream := encodeFrames(t, []struct {
		idx int
		res *result.Results
		err error
	}{
		{1, &result.Results{}, nil},
	})
	results := make([]*result.Results, 2)
	errs := make([]error, 2)
	var c Client
	c.decodeBatch(stream, qs, results, errs)
	if results[1] == nil {
		t.Error("item 1 lost despite arriving before EOF")
	}
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "ended after 1 of 2") {
		t.Errorf("errs[0] = %v, want early-EOF error", errs[0])
	}
}

// TestDecodeBatchProtocolViolations: an out-of-range or repeated index
// is a broken server; unresolved items fail.
func TestDecodeBatchProtocolViolations(t *testing.T) {
	t.Run("out-of-range", func(t *testing.T) {
		qs := batchQueries(t, 2)
		stream := encodeFrames(t, []struct {
			idx int
			res *result.Results
			err error
		}{
			{7, &result.Results{}, nil},
		})
		results := make([]*result.Results, 2)
		errs := make([]error, 2)
		var c Client
		c.decodeBatch(stream, qs, results, errs)
		for i, err := range errs {
			if err == nil || !strings.Contains(err.Error(), "named item 7") {
				t.Errorf("errs[%d] = %v, want out-of-range error", i, err)
			}
		}
	})
	t.Run("repeated", func(t *testing.T) {
		qs := batchQueries(t, 2)
		stream := encodeFrames(t, []struct {
			idx int
			res *result.Results
			err error
		}{
			{0, &result.Results{}, nil},
			{0, &result.Results{}, nil},
		})
		results := make([]*result.Results, 2)
		errs := make([]error, 2)
		var c Client
		c.decodeBatch(stream, qs, results, errs)
		if errs[1] == nil || !strings.Contains(errs[1].Error(), "repeated item 0") {
			t.Errorf("errs[1] = %v, want repeated-item error", errs[1])
		}
	})
}

// TestBatchItemRoundTrip pins the frame codec both ways, including the
// error frame.
func TestBatchItemRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := soif.NewEncoder(&buf)
	res := &result.Results{Sources: []string{"S"}}
	if err := result.EncodeBatchItem(enc, 3, res, nil); err != nil {
		t.Fatal(err)
	}
	if err := result.EncodeBatchItem(enc, 1, nil, errors.New("boom")); err != nil {
		t.Fatal(err)
	}
	dec := soif.NewDecoder(&buf)
	idx, r, itemErr, err := result.DecodeBatchItem(dec)
	if err != nil || idx != 3 || itemErr != nil || r == nil {
		t.Fatalf("frame 1 = (%d, %v, %v, %v)", idx, r, itemErr, err)
	}
	idx, r, itemErr, err = result.DecodeBatchItem(dec)
	if err != nil || idx != 1 || itemErr == nil || r != nil {
		t.Fatalf("frame 2 = (%d, %v, %v, %v)", idx, r, itemErr, err)
	}
	if !strings.Contains(itemErr.Error(), "boom") {
		t.Errorf("item error = %v", itemErr)
	}
	if _, _, _, err = result.DecodeBatchItem(dec); err != io.EOF {
		t.Errorf("trailing decode err = %v, want io.EOF", err)
	}
}

// TestLocalConnQueryBatch exercises the in-process batch path.
func TestLocalConnQueryBatch(t *testing.T) {
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := source.New("L1", eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Add(&index.Document{
		Linkage: "http://l1/doc", Title: "Databases and gardening",
		Body: "Databases, gardening, and distributed compost.",
	}); err != nil {
		t.Fatal(err)
	}
	var bc BatchConn = NewLocalConn(src, nil) // compile-time capability pin
	q1 := query.New()
	r1, err := query.ParseRanking(`list((any "databases"))`)
	if err != nil {
		t.Fatal(err)
	}
	q1.Ranking = r1
	q2 := query.New()
	r2, err := query.ParseRanking(`list((any "gardening"))`)
	if err != nil {
		t.Fatal(err)
	}
	q2.Ranking = r2
	results, errs := bc.QueryBatch(context.Background(), []*query.Query{q1, q2})
	if len(results) != 2 || len(errs) != 2 {
		t.Fatalf("got %d results, %d errs", len(results), len(errs))
	}
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		if results[i] == nil {
			t.Fatalf("item %d: nil result", i)
		}
	}
}
