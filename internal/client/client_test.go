package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/query"
	"starts/internal/server"
	"starts/internal/source"
)

// startServer serves one single-source resource, counting requests.
func startServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := source.New("S1", eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&index.Document{
		Linkage: "http://s1/doc", Title: "Distributed databases",
		Body: "A document about distributed databases.",
	}); err != nil {
		t.Fatal(err)
	}
	res := source.NewResource()
	if err := res.Add(s); err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	ts := httptest.NewServer(nil)
	inner := server.New(res, ts.URL)
	ts.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		inner.ServeHTTP(w, r)
	})
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestHTTPConnCachesMetadata(t *testing.T) {
	ts, hits := startServer(t)
	ctx := context.Background()
	c := NewClient(ts.Client())
	conn := NewHTTPConn(c, "S1", ts.URL+"/sources/S1/metadata")

	if _, err := conn.Metadata(ctx); err != nil {
		t.Fatal(err)
	}
	after := hits.Load()
	// Summary and Query discover their URLs from the cached metadata: one
	// extra request each, no metadata re-fetch.
	if _, err := conn.Summary(ctx); err != nil {
		t.Fatal(err)
	}
	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list((body-of-text "databases"))`)
	if _, err := conn.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := hits.Load() - after; got != 2 {
		t.Errorf("requests after metadata = %d, want 2 (summary + query)", got)
	}
	if conn.SourceID() != "S1" {
		t.Errorf("SourceID = %s", conn.SourceID())
	}
	if _, err := conn.Sample(ctx); err != nil {
		t.Errorf("Sample: %v", err)
	}
}

func TestHTTPConnLazyMetadata(t *testing.T) {
	ts, _ := startServer(t)
	ctx := context.Background()
	c := NewClient(ts.Client())
	conn := NewHTTPConn(c, "S1", ts.URL+"/sources/S1/metadata")
	// Summary without a prior Metadata call fetches metadata implicitly.
	sum, err := conn.Summary(ctx)
	if err != nil || sum.NumDocs != 1 {
		t.Fatalf("Summary = %v, %v", sum, err)
	}
}

func TestDiscover(t *testing.T) {
	ts, _ := startServer(t)
	ctx := context.Background()
	c := NewClient(ts.Client())
	conns, err := c.Discover(ctx, ts.URL+"/resource")
	if err != nil || len(conns) != 1 || conns[0].SourceID() != "S1" {
		t.Fatalf("Discover = %v, %v", conns, err)
	}
	if _, err := c.Discover(ctx, ts.URL+"/sources/S1/metadata"); err == nil {
		t.Error("metadata object accepted as resource")
	}
	if _, err := c.Discover(ctx, "http://127.0.0.1:1/resource"); err == nil {
		t.Error("unreachable server accepted")
	}
}

func TestClientHTTPErrorsIncludeBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "synthetic failure detail", http.StatusTeapot)
	}))
	defer ts.Close()
	c := NewClient(ts.Client())
	_, err := c.Resource(context.Background(), ts.URL+"/resource")
	if err == nil || !strings.Contains(err.Error(), "synthetic failure detail") {
		t.Errorf("error lacks body detail: %v", err)
	}
}

func TestClientBadURL(t *testing.T) {
	c := NewClient(nil)
	if _, err := c.Resource(context.Background(), "://not-a-url"); err == nil {
		t.Error("bad URL accepted")
	}
	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list("x")`)
	if _, err := c.Query(context.Background(), "://not-a-url", q); err == nil {
		t.Error("bad query URL accepted")
	}
}

func TestQueryMarshalErrorSurfaces(t *testing.T) {
	ts, _ := startServer(t)
	c := NewClient(ts.Client())
	// An invalid query fails before any request is made.
	if _, err := c.Query(context.Background(), ts.URL+"/sources/S1/query", query.New()); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestStatusErrorTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := NewClient(ts.Client())
	_, err := c.Resource(context.Background(), ts.URL+"/resource")
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error is not a *StatusError: %v", err)
	}
	if se.StatusCode != http.StatusServiceUnavailable || !se.Temporary() {
		t.Errorf("StatusError = %+v, want retryable 503", se)
	}
	if !strings.Contains(se.Error(), "overloaded") {
		t.Errorf("error lacks body snippet: %v", se)
	}
}

func TestStatusErrorTemporary(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusBadRequest: false, http.StatusNotFound: false,
		http.StatusRequestTimeout: true, http.StatusTooManyRequests: true,
		http.StatusInternalServerError: true, http.StatusBadGateway: true,
	} {
		se := &StatusError{StatusCode: code}
		if se.Temporary() != want {
			t.Errorf("Temporary(%d) = %v, want %v", code, !want, want)
		}
	}
}

// TestHTTPConnConcurrentUse exercises the cached-metadata path from many
// goroutines; the race detector verifies the locking.
func TestHTTPConnConcurrentUse(t *testing.T) {
	ts, _ := startServer(t)
	ctx := context.Background()
	c := NewClient(ts.Client())
	conn := NewHTTPConn(c, "S1", ts.URL+"/sources/S1/metadata")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				if _, err := conn.Metadata(ctx); err != nil {
					t.Error(err)
				}
				return
			}
			if _, err := conn.Summary(ctx); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}

// TestHTTPConnMetadataExpiry: a cached metadata object past its
// DateExpires is refetched, mirroring the core harvest cache.
func TestHTTPConnMetadataExpiry(t *testing.T) {
	ts, hits := startServer(t)
	ctx := context.Background()
	c := NewClient(ts.Client())
	conn := NewHTTPConn(c, "S1", ts.URL+"/sources/S1/metadata")
	if _, err := conn.Metadata(ctx); err != nil {
		t.Fatal(err)
	}
	// Expire the cached copy by moving the conn's clock past DateExpires
	// (the test server stamps none, so force one on the cached object).
	conn.mu.Lock()
	conn.cached.DateExpires = time.Now().Add(-time.Hour)
	conn.mu.Unlock()
	before := hits.Load()
	if _, err := conn.Summary(ctx); err != nil {
		t.Fatal(err)
	}
	// Expired cache: summary must refetch metadata first (2 requests).
	if got := hits.Load() - before; got != 2 {
		t.Errorf("requests after expiry = %d, want 2 (metadata refetch + summary)", got)
	}
}

func TestLocalConnWithoutResource(t *testing.T) {
	eng, _ := engine.New(engine.NewVectorConfig())
	s, _ := source.New("L1", eng)
	if err := s.Add(&index.Document{Linkage: "http://l/1", Title: "t", Body: "words here"}); err != nil {
		t.Fatal(err)
	}
	conn := NewLocalConn(s, nil)
	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list((body-of-text "words"))`)
	// Naming extra sources without a resource falls back to the single
	// source.
	q.Sources = []string{"L2"}
	r, err := conn.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sources) != 1 || r.Sources[0] != "L1" {
		t.Errorf("sources = %v", r.Sources)
	}
}
