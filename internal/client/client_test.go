package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/query"
	"starts/internal/server"
	"starts/internal/source"
)

// startServer serves one single-source resource, counting requests.
func startServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := source.New("S1", eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&index.Document{
		Linkage: "http://s1/doc", Title: "Distributed databases",
		Body: "A document about distributed databases.",
	}); err != nil {
		t.Fatal(err)
	}
	res := source.NewResource()
	if err := res.Add(s); err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	ts := httptest.NewServer(nil)
	inner := server.New(res, ts.URL)
	ts.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		inner.ServeHTTP(w, r)
	})
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestHTTPConnCachesMetadata(t *testing.T) {
	ts, hits := startServer(t)
	ctx := context.Background()
	c := NewClient(ts.Client())
	conn := NewHTTPConn(c, "S1", ts.URL+"/sources/S1/metadata")

	if _, err := conn.Metadata(ctx); err != nil {
		t.Fatal(err)
	}
	after := hits.Load()
	// Summary and Query discover their URLs from the cached metadata: one
	// extra request each, no metadata re-fetch.
	if _, err := conn.Summary(ctx); err != nil {
		t.Fatal(err)
	}
	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list((body-of-text "databases"))`)
	if _, err := conn.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := hits.Load() - after; got != 2 {
		t.Errorf("requests after metadata = %d, want 2 (summary + query)", got)
	}
	if conn.SourceID() != "S1" {
		t.Errorf("SourceID = %s", conn.SourceID())
	}
	if _, err := conn.Sample(ctx); err != nil {
		t.Errorf("Sample: %v", err)
	}
}

func TestHTTPConnLazyMetadata(t *testing.T) {
	ts, _ := startServer(t)
	ctx := context.Background()
	c := NewClient(ts.Client())
	conn := NewHTTPConn(c, "S1", ts.URL+"/sources/S1/metadata")
	// Summary without a prior Metadata call fetches metadata implicitly.
	sum, err := conn.Summary(ctx)
	if err != nil || sum.NumDocs != 1 {
		t.Fatalf("Summary = %v, %v", sum, err)
	}
}

func TestDiscover(t *testing.T) {
	ts, _ := startServer(t)
	ctx := context.Background()
	c := NewClient(ts.Client())
	conns, err := c.Discover(ctx, ts.URL+"/resource")
	if err != nil || len(conns) != 1 || conns[0].SourceID() != "S1" {
		t.Fatalf("Discover = %v, %v", conns, err)
	}
	if _, err := c.Discover(ctx, ts.URL+"/sources/S1/metadata"); err == nil {
		t.Error("metadata object accepted as resource")
	}
	if _, err := c.Discover(ctx, "http://127.0.0.1:1/resource"); err == nil {
		t.Error("unreachable server accepted")
	}
}

func TestClientHTTPErrorsIncludeBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "synthetic failure detail", http.StatusTeapot)
	}))
	defer ts.Close()
	c := NewClient(ts.Client())
	_, err := c.Resource(context.Background(), ts.URL+"/resource")
	if err == nil || !strings.Contains(err.Error(), "synthetic failure detail") {
		t.Errorf("error lacks body detail: %v", err)
	}
}

func TestClientBadURL(t *testing.T) {
	c := NewClient(nil)
	if _, err := c.Resource(context.Background(), "://not-a-url"); err == nil {
		t.Error("bad URL accepted")
	}
	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list("x")`)
	if _, err := c.Query(context.Background(), "://not-a-url", q); err == nil {
		t.Error("bad query URL accepted")
	}
}

func TestQueryMarshalErrorSurfaces(t *testing.T) {
	ts, _ := startServer(t)
	c := NewClient(ts.Client())
	// An invalid query fails before any request is made.
	if _, err := c.Query(context.Background(), ts.URL+"/sources/S1/query", query.New()); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestLocalConnWithoutResource(t *testing.T) {
	eng, _ := engine.New(engine.NewVectorConfig())
	s, _ := source.New("L1", eng)
	if err := s.Add(&index.Document{Linkage: "http://l/1", Title: "t", Body: "words here"}); err != nil {
		t.Fatal(err)
	}
	conn := NewLocalConn(s, nil)
	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list((body-of-text "words"))`)
	// Naming extra sources without a resource falls back to the single
	// source.
	q.Sources = []string{"L2"}
	r, err := conn.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sources) != 1 || r.Sources[0] != "L1" {
		t.Errorf("sources = %v", r.Sources)
	}
}
