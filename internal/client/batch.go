package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"

	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/soif"
)

// BatchConn is a Conn that can evaluate several queries in one wire
// call. STARTS' same-resource facility allows a single request to carry
// multiple queries for a source; a BatchConn exploits that so one round
// trip amortizes across a whole queue drain instead of paying an RTT
// per sub-query.
//
// QueryBatch returns one result or one error per input query, aligned
// by index (len(results) == len(errs) == len(qs); exactly one of
// results[i], errs[i] is non-nil). A failure of one item must not fail
// the others: transport-level breakage fills every still-unresolved
// slot, but per-item errors stay per-item.
//
// Capability assertion: middlewares that wrap a BatchConn should
// implement QueryBatch themselves (delegating per item or per batch) —
// a wrapper that only implements Conn silently downgrades the whole
// chain to per-item calls. ChainBatch reports whether the capability
// survived.
type BatchConn interface {
	Conn
	// QueryBatch evaluates qs at the source in one wire call.
	QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error)
}

// ChainBatch wraps conn like Chain and additionally reports whether the
// resulting chain still exposes the batch capability — i.e. the leaf is
// a BatchConn and every middleware passed it through.
func ChainBatch(conn Conn, mw ...Middleware) (Conn, bool) {
	conn = Chain(conn, mw...)
	_, ok := conn.(BatchConn)
	return conn, ok
}

// splitBatchErr fills every still-unresolved slot with err. It is the
// transport-breakage rule: items already decoded off the wire keep
// their results; everything after the break fails.
func splitBatchErr(results []*result.Results, errs []error, err error) {
	for i := range errs {
		if results[i] == nil && errs[i] == nil {
			errs[i] = err
		}
	}
}

// QueryBatch submits qs in one POST to a source's batch query URL and
// stream-decodes the per-item frames as they arrive off the wire, so
// early items resolve before the server has finished the late ones.
// The returned slices are index-aligned with qs; a broken stream fails
// only the items not yet decoded.
func (c *Client) QueryBatch(ctx context.Context, url string, qs []*query.Query) ([]*result.Results, []error) {
	results := make([]*result.Results, len(qs))
	errs := make([]error, len(qs))
	if len(qs) == 0 {
		return results, errs
	}
	var body bytes.Buffer
	enc := soif.NewEncoder(&body)
	for i, q := range qs {
		o, err := q.ToSOIF()
		if err != nil {
			splitBatchErr(results, errs, fmt.Errorf("client: encoding batch query %d: %w", i, err))
			return results, errs
		}
		if err := enc.Encode(o); err != nil {
			splitBatchErr(results, errs, fmt.Errorf("client: encoding batch query %d: %w", i, err))
			return results, errs
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body.Bytes()))
	if err != nil {
		splitBatchErr(results, errs, err)
		return results, errs
	}
	req.Header.Set("Content-Type", "application/x-soif")
	resp, err := c.hc.Do(req)
	if err != nil {
		splitBatchErr(results, errs, err)
		return results, errs
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<10))
		_, _ = io.Copy(io.Discard, resp.Body)
		splitBatchErr(results, errs, &StatusError{
			Method: req.Method, URL: req.URL.String(),
			StatusCode: resp.StatusCode, Status: resp.Status,
			Snippet: truncate(snippet),
		})
		return results, errs
	}
	c.decodeBatch(io.LimitReader(resp.Body, maxResponseBytes), qs, results, errs)
	return results, errs
}

// decodeBatch consumes a batch response stream frame by frame, filling
// the index-aligned results/errs slots. Exposed through QueryBatch; it
// is separate so tests can drive it from an arbitrary reader.
func (c *Client) decodeBatch(r io.Reader, qs []*query.Query, results []*result.Results, errs []error) {
	dec := soif.NewDecoder(r)
	seen := 0
	for seen < len(qs) {
		idx, res, itemErr, err := result.DecodeBatchItem(dec)
		if err == io.EOF {
			splitBatchErr(results, errs, fmt.Errorf("client: batch response ended after %d of %d items", seen, len(qs)))
			return
		}
		if err != nil {
			// The stream itself broke mid-frame: items already decoded
			// keep their results, everything else fails.
			splitBatchErr(results, errs, fmt.Errorf("client: batch response broke after %d of %d items: %w", seen, len(qs), err))
			return
		}
		if idx >= len(qs) {
			splitBatchErr(results, errs, fmt.Errorf("client: batch response named item %d of a %d-item request", idx, len(qs)))
			return
		}
		if results[idx] != nil || errs[idx] != nil {
			splitBatchErr(results, errs, fmt.Errorf("client: batch response repeated item %d", idx))
			return
		}
		if itemErr != nil {
			errs[idx] = itemErr
		} else {
			results[idx] = res
		}
		seen++
	}
}

// QueryBatch implements BatchConn: one wire call against the source's
// batch endpoint (the query URL with a "-batch" suffix, the convention
// the server registers).
func (h *HTTPConn) QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error) {
	m, err := h.meta(ctx)
	if err != nil {
		results := make([]*result.Results, len(qs))
		errs := make([]error, len(qs))
		splitBatchErr(results, errs, err)
		return results, errs
	}
	return h.client.QueryBatch(ctx, BatchURL(m.Linkage), qs)
}

// BatchURL derives a source's batch query endpoint from its (metadata-
// declared) query URL.
func BatchURL(queryURL string) string { return queryURL + "-batch" }

// QueryBatch implements BatchConn for in-process sources: items run
// concurrently, mirroring the server-side batch handler.
func (l *LocalConn) QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error) {
	results := make([]*result.Results, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q *query.Query) {
			defer wg.Done()
			results[i], errs[i] = l.Query(ctx, q)
		}(i, q)
	}
	wg.Wait()
	return results, errs
}
