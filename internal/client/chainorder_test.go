// Chain-composition tests live in an external test package: they compose
// the caching, retrying and observing middlewares, and resilient imports
// client (an internal test file would cycle).
package client_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/dispatch"
	"starts/internal/meta"
	"starts/internal/obs"
	"starts/internal/qcache"
	"starts/internal/query"
	"starts/internal/resilient"
	"starts/internal/result"
	"starts/internal/source"
)

// flakyConn fails its first Query with a retryable error, then succeeds,
// counting every attempt that reaches it.
type flakyConn struct {
	attempts atomic.Int64
}

func (c *flakyConn) SourceID() string { return "S" }
func (c *flakyConn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	return &meta.SourceMeta{SourceID: "S"}, nil
}
func (c *flakyConn) Summary(ctx context.Context) (*meta.ContentSummary, error) {
	return &meta.ContentSummary{}, nil
}
func (c *flakyConn) Sample(ctx context.Context) ([]*source.SampleEntry, error) {
	return nil, nil
}
func (c *flakyConn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	if c.attempts.Add(1) == 1 {
		return nil, errors.New("transient network failure")
	}
	return &result.Results{}, nil
}

// countingMW counts Query calls passing through its position in a chain.
func countingMW(n *atomic.Int64) client.Middleware {
	return func(c client.Conn) client.Conn { return &countingConn{Conn: c, n: n} }
}

type countingConn struct {
	client.Conn
	n *atomic.Int64
}

func (c *countingConn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	c.n.Add(1)
	return c.Conn.Query(ctx, q)
}

// TestChainOrderWithCache pins the composition contract for the caching
// middleware: the cache belongs OUTSIDE the retrier — a retry re-runs
// the source, never re-enters the cache — and INSIDE the observer, so
// cache hits still count into conn metrics. Each chain issues the same
// query twice against a conn whose first attempt fails retryably; the
// layer counters expose where each call was answered.
func TestChainOrderWithCache(t *testing.T) {
	policy := resilient.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1}

	type counts struct {
		attempts     int64 // queries reaching the source
		cacheEntries int64 // queries entering the cache layer
		observed     int64 // queries the observer saw
	}
	cases := []struct {
		name string
		// order lists middlewares innermost-first, client.Chain-style,
		// with a counter planted just outside the cache layer.
		order func(cacheMW, countMW, retryMW, observeMW client.Middleware) []client.Middleware
		want  counts
	}{
		{
			// observe(count(cache(retry(conn)))): the recommended order.
			// Call 1 misses and retries inside one cache entry; call 2 is
			// a hit and still reaches the observer.
			name: "cache-outside-retry-inside-observe",
			order: func(cacheMW, countMW, retryMW, observeMW client.Middleware) []client.Middleware {
				return []client.Middleware{retryMW, cacheMW, countMW, observeMW}
			},
			want: counts{attempts: 2, cacheEntries: 2, observed: 2},
		},
		{
			// observe(retry(count(cache(conn)))): cache wrongly inside the
			// retrier — the failed first attempt re-enters the cache on
			// retry (3 entries for 2 calls).
			name: "cache-inside-retry",
			order: func(cacheMW, countMW, retryMW, observeMW client.Middleware) []client.Middleware {
				return []client.Middleware{cacheMW, countMW, retryMW, observeMW}
			},
			want: counts{attempts: 2, cacheEntries: 3, observed: 2},
		},
		{
			// count(cache(observe(retry(conn)))): observer wrongly inside
			// the cache — the hit on call 2 never reaches it, so metrics
			// undercount served queries.
			name: "observe-inside-cache",
			order: func(cacheMW, countMW, retryMW, observeMW client.Middleware) []client.Middleware {
				return []client.Middleware{retryMW, observeMW, cacheMW, countMW}
			},
			want: counts{attempts: 2, cacheEntries: 2, observed: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := &flakyConn{}
			reg := obs.NewRegistry()
			cache := qcache.New(qcache.Config{Metrics: reg})
			var cacheEntries atomic.Int64
			cacheMW := func(c client.Conn) client.Conn { return qcache.WrapConn(c, cache) }
			retryMW := func(c client.Conn) client.Conn { return resilient.Wrap(c, policy, nil) }
			observeMW := func(c client.Conn) client.Conn { return obs.WrapConn(c, reg) }

			conn := client.Chain(src, tc.order(cacheMW, countingMW(&cacheEntries), retryMW, observeMW)...)
			q := query.New()
			r, err := query.ParseRanking(`list((any "databases"))`)
			if err != nil {
				t.Fatal(err)
			}
			q.Ranking = r
			for i := 0; i < 2; i++ {
				if _, err := conn.Query(context.Background(), q); err != nil {
					t.Fatalf("query %d: %v", i+1, err)
				}
			}
			got := counts{
				attempts:     src.attempts.Load(),
				cacheEntries: cacheEntries.Load(),
				observed:     reg.Counter(obs.L("starts_conn_calls_total", "source", "S", "op", "query")).Value(),
			}
			if got != tc.want {
				t.Errorf("counts = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// batchLeaf is a batch-capable leaf conn: QueryBatch counts wire calls
// and items and can park until release closes (nil release = no gate).
type batchLeaf struct {
	flakyConn
	wireCalls atomic.Int64
	wireItems atomic.Int64
	maxItems  atomic.Int64
	release   chan struct{}
}

func (b *batchLeaf) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	rs, errs := b.QueryBatch(ctx, []*query.Query{q})
	return rs[0], errs[0]
}

func (b *batchLeaf) QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error) {
	b.wireCalls.Add(1)
	b.wireItems.Add(int64(len(qs)))
	for {
		old := b.maxItems.Load()
		if int64(len(qs)) <= old || b.maxItems.CompareAndSwap(old, int64(len(qs))) {
			break
		}
	}
	results := make([]*result.Results, len(qs))
	errs := make([]error, len(qs))
	if b.release != nil {
		select {
		case <-b.release:
		case <-ctx.Done():
			for i := range errs {
				errs[i] = ctx.Err()
			}
			return results, errs
		}
	}
	for i := range qs {
		results[i] = &result.Results{Sources: []string{"S"}}
	}
	return results, errs
}

// TestChainOrderBatchCapability pins the capability-assertion rule on
// the recommended chain observe(dispatch(cache(retry(conn)))): with a
// BatchConn leaf every exported middleware passes QueryBatch through,
// so the fully wrapped conn still multiplexes — and one queue drain of
// distinct queries reaches the leaf as ONE wire call. A batch-blind
// middleware anywhere in the chain downgrades it, which ChainBatch
// reports.
func TestChainOrderBatchCapability(t *testing.T) {
	policy := resilient.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1}
	mkQuery := func(term string) *query.Query {
		q := query.New()
		r, err := query.ParseRanking(`list((any "` + term + `"))`)
		if err != nil {
			t.Fatal(err)
		}
		q.Ranking = r
		return q
	}

	t.Run("capability-survives-chain", func(t *testing.T) {
		src := &batchLeaf{release: make(chan struct{})}
		reg := obs.NewRegistry()
		cache := qcache.New(qcache.Config{Metrics: reg})
		d := dispatch.New(dispatch.Config{Limits: dispatch.Limits{Concurrency: 1}})
		defer d.Close()
		conn, ok := client.ChainBatch(src,
			func(c client.Conn) client.Conn {
				if bc, isBatch := c.(client.BatchConn); isBatch {
					return resilient.WrapBatch(bc, policy, nil)
				}
				return resilient.Wrap(c, policy, nil)
			},
			func(c client.Conn) client.Conn { return qcache.WrapConn(c, cache) },
			func(c client.Conn) client.Conn { return dispatch.WrapConn(c, d, dispatch.Limits{Concurrency: 1}) },
			func(c client.Conn) client.Conn { return obs.WrapConn(c, reg) },
		)
		if !ok {
			t.Fatal("ChainBatch reports the batch capability was dropped")
		}
		bc := conn.(client.BatchConn)

		// Park the single worker on a decoy query, queue three distinct
		// queries behind it, then open the gate: the freed worker drains
		// all three into one leaf wire call.
		decoyDone := make(chan struct{})
		go func() {
			defer close(decoyDone)
			if _, err := conn.Query(context.Background(), mkQuery("decoy")); err != nil {
				t.Errorf("decoy query: %v", err)
			}
		}()
		deadline := time.Now().Add(2 * time.Second)
		for src.wireCalls.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if src.wireCalls.Load() == 0 {
			t.Fatal("decoy query never reached the leaf")
		}

		qs := []*query.Query{mkQuery("alpha"), mkQuery("beta"), mkQuery("gamma")}
		batchDone := make(chan struct{})
		var results []*result.Results
		var errs []error
		go func() {
			defer close(batchDone)
			results, errs = bc.QueryBatch(context.Background(), qs)
		}()
		// Wait until all three sit in the source queue before releasing
		// the worker.
		for time.Now().Before(deadline) {
			depth := int64(0)
			for _, st := range d.Snapshot() {
				if st.Source == "S" {
					depth = st.Depth
				}
			}
			if depth >= 3 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		close(src.release)
		<-decoyDone
		<-batchDone

		for i, err := range errs {
			if err != nil {
				t.Fatalf("batch item %d: %v", i, err)
			}
			if results[i] == nil {
				t.Fatalf("batch item %d: nil result", i)
			}
		}
		if got := src.maxItems.Load(); got != 3 {
			t.Errorf("largest leaf wire call carried %d items, want 3 (one call per drain)", got)
		}
		if got := src.wireCalls.Load(); got != 2 {
			t.Errorf("leaf wire calls = %d, want 2 (decoy + one drained batch)", got)
		}
		// The observer saw the batch as a batch: one query-batch op and a
		// recorded wire batch size.
		if got := reg.Counter(obs.L("starts_conn_calls_total", "source", "S", "op", "query-batch")).Value(); got != 1 {
			t.Errorf("observed query-batch calls = %d, want 1", got)
		}
		for _, st := range d.Snapshot() {
			if st.Source == "S" {
				if st.WireCalls != 2 || st.WireItems != 4 {
					t.Errorf("dispatch wire stats = %d calls / %d items, want 2/4", st.WireCalls, st.WireItems)
				}
			}
		}
	})

	t.Run("batch-blind-middleware-downgrades", func(t *testing.T) {
		src := &batchLeaf{}
		var n atomic.Int64
		_, ok := client.ChainBatch(src, countingMW(&n))
		if ok {
			t.Error("ChainBatch must report a downgrade through a batch-blind middleware")
		}
	})
}

// gatedConn parks every Query until release closes, counting the calls
// that reach it — the knob for holding a dispatch batch open while more
// callers join it.
type gatedConn struct {
	flakyConn
	calls   atomic.Int64
	release chan struct{}
}

func (g *gatedConn) Query(ctx context.Context, _ *query.Query) (*result.Results, error) {
	g.calls.Add(1)
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &result.Results{}, nil
}

// TestChainOrderWithDispatch pins where the dispatching middleware
// belongs: OUTSIDE the cache (so concurrent identical misses coalesce
// into one batch before they can stampede the fill) and INSIDE the
// observer (so coalesced calls still count). It also pins — by compiling
// — that dispatch.WrapConn satisfies client.Conn structurally.
func TestChainOrderWithDispatch(t *testing.T) {
	policy := resilient.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1}

	// observe(dispatch(cache(retry(conn)))): sequential traffic behaves
	// exactly as without dispatch — batches of one, retries inside one
	// cache entry, the hit never reaching the source.
	t.Run("sequential", func(t *testing.T) {
		src := &flakyConn{}
		reg := obs.NewRegistry()
		cache := qcache.New(qcache.Config{Metrics: reg})
		d := dispatch.New(dispatch.Config{})
		defer d.Close()
		conn := client.Chain(src,
			func(c client.Conn) client.Conn { return resilient.Wrap(c, policy, nil) },
			func(c client.Conn) client.Conn { return qcache.WrapConn(c, cache) },
			func(c client.Conn) client.Conn { return dispatch.WrapConn(c, d, dispatch.Limits{}) },
			func(c client.Conn) client.Conn { return obs.WrapConn(c, reg) },
		)
		q := query.New()
		r, err := query.ParseRanking(`list((any "databases"))`)
		if err != nil {
			t.Fatal(err)
		}
		q.Ranking = r
		for i := 0; i < 2; i++ {
			if _, err := conn.Query(context.Background(), q); err != nil {
				t.Fatalf("query %d: %v", i+1, err)
			}
		}
		if got := src.attempts.Load(); got != 2 {
			t.Errorf("source attempts = %d, want 2 (one retried miss, one cache hit)", got)
		}
		if got := reg.Counter(obs.L("starts_conn_calls_total", "source", "S", "op", "query")).Value(); got != 2 {
			t.Errorf("observed queries = %d, want 2", got)
		}
		for _, st := range d.Snapshot() {
			if st.Source == "S" && st.Batched != 0 {
				t.Errorf("sequential traffic batched %d calls, want 0", st.Batched)
			}
		}
	})

	// The payoff: N concurrent identical queries coalesce into ONE wire
	// call (and one cache fill) at the dispatch layer.
	t.Run("concurrent-coalescing", func(t *testing.T) {
		const callers = 8
		src := &gatedConn{release: make(chan struct{})}
		reg := obs.NewRegistry()
		cache := qcache.New(qcache.Config{Metrics: reg})
		d := dispatch.New(dispatch.Config{})
		defer d.Close()
		conn := client.Chain(src,
			func(c client.Conn) client.Conn { return resilient.Wrap(c, policy, nil) },
			func(c client.Conn) client.Conn { return qcache.WrapConn(c, cache) },
			func(c client.Conn) client.Conn { return dispatch.WrapConn(c, d, dispatch.Limits{}) },
			func(c client.Conn) client.Conn { return obs.WrapConn(c, reg) },
		)
		q := query.New()
		r, err := query.ParseRanking(`list((any "databases"))`)
		if err != nil {
			t.Fatal(err)
		}
		q.Ranking = r

		errs := make(chan error, callers)
		for i := 0; i < callers; i++ {
			go func() {
				_, err := conn.Query(context.Background(), q)
				errs <- err
			}()
		}
		// Release the gate only once all callers sit on the batch: one led,
		// the rest joined while its wire call was parked.
		deadline := time.Now().Add(2 * time.Second)
		for submitted := int64(0); submitted < callers && time.Now().Before(deadline); {
			submitted = 0
			for _, st := range d.Snapshot() {
				if st.Source == "S" {
					submitted = st.Submitted
				}
			}
			time.Sleep(time.Millisecond)
		}
		close(src.release)
		for i := 0; i < callers; i++ {
			if err := <-errs; err != nil {
				t.Fatalf("caller %d: %v", i, err)
			}
		}
		if got := src.calls.Load(); got != 1 {
			t.Errorf("wire calls = %d, want 1 for %d concurrent identical queries", got, callers)
		}
		for _, st := range d.Snapshot() {
			if st.Source == "S" && st.Batched != callers-1 {
				t.Errorf("batched = %d, want %d", st.Batched, callers-1)
			}
		}
	})
}
