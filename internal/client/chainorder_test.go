// Chain-composition tests live in an external test package: they compose
// the caching, retrying and observing middlewares, and resilient imports
// client (an internal test file would cycle).
package client_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/dispatch"
	"starts/internal/meta"
	"starts/internal/obs"
	"starts/internal/qcache"
	"starts/internal/query"
	"starts/internal/resilient"
	"starts/internal/result"
	"starts/internal/source"
)

// flakyConn fails its first Query with a retryable error, then succeeds,
// counting every attempt that reaches it.
type flakyConn struct {
	attempts atomic.Int64
}

func (c *flakyConn) SourceID() string { return "S" }
func (c *flakyConn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	return &meta.SourceMeta{SourceID: "S"}, nil
}
func (c *flakyConn) Summary(ctx context.Context) (*meta.ContentSummary, error) {
	return &meta.ContentSummary{}, nil
}
func (c *flakyConn) Sample(ctx context.Context) ([]*source.SampleEntry, error) {
	return nil, nil
}
func (c *flakyConn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	if c.attempts.Add(1) == 1 {
		return nil, errors.New("transient network failure")
	}
	return &result.Results{}, nil
}

// countingMW counts Query calls passing through its position in a chain.
func countingMW(n *atomic.Int64) client.Middleware {
	return func(c client.Conn) client.Conn { return &countingConn{Conn: c, n: n} }
}

type countingConn struct {
	client.Conn
	n *atomic.Int64
}

func (c *countingConn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	c.n.Add(1)
	return c.Conn.Query(ctx, q)
}

// TestChainOrderWithCache pins the composition contract for the caching
// middleware: the cache belongs OUTSIDE the retrier — a retry re-runs
// the source, never re-enters the cache — and INSIDE the observer, so
// cache hits still count into conn metrics. Each chain issues the same
// query twice against a conn whose first attempt fails retryably; the
// layer counters expose where each call was answered.
func TestChainOrderWithCache(t *testing.T) {
	policy := resilient.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1}

	type counts struct {
		attempts     int64 // queries reaching the source
		cacheEntries int64 // queries entering the cache layer
		observed     int64 // queries the observer saw
	}
	cases := []struct {
		name string
		// order lists middlewares innermost-first, client.Chain-style,
		// with a counter planted just outside the cache layer.
		order func(cacheMW, countMW, retryMW, observeMW client.Middleware) []client.Middleware
		want  counts
	}{
		{
			// observe(count(cache(retry(conn)))): the recommended order.
			// Call 1 misses and retries inside one cache entry; call 2 is
			// a hit and still reaches the observer.
			name: "cache-outside-retry-inside-observe",
			order: func(cacheMW, countMW, retryMW, observeMW client.Middleware) []client.Middleware {
				return []client.Middleware{retryMW, cacheMW, countMW, observeMW}
			},
			want: counts{attempts: 2, cacheEntries: 2, observed: 2},
		},
		{
			// observe(retry(count(cache(conn)))): cache wrongly inside the
			// retrier — the failed first attempt re-enters the cache on
			// retry (3 entries for 2 calls).
			name: "cache-inside-retry",
			order: func(cacheMW, countMW, retryMW, observeMW client.Middleware) []client.Middleware {
				return []client.Middleware{cacheMW, countMW, retryMW, observeMW}
			},
			want: counts{attempts: 2, cacheEntries: 3, observed: 2},
		},
		{
			// count(cache(observe(retry(conn)))): observer wrongly inside
			// the cache — the hit on call 2 never reaches it, so metrics
			// undercount served queries.
			name: "observe-inside-cache",
			order: func(cacheMW, countMW, retryMW, observeMW client.Middleware) []client.Middleware {
				return []client.Middleware{retryMW, observeMW, cacheMW, countMW}
			},
			want: counts{attempts: 2, cacheEntries: 2, observed: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := &flakyConn{}
			reg := obs.NewRegistry()
			cache := qcache.New(qcache.Config{Metrics: reg})
			var cacheEntries atomic.Int64
			cacheMW := func(c client.Conn) client.Conn { return qcache.WrapConn(c, cache) }
			retryMW := func(c client.Conn) client.Conn { return resilient.Wrap(c, policy, nil) }
			observeMW := func(c client.Conn) client.Conn { return obs.WrapConn(c, reg) }

			conn := client.Chain(src, tc.order(cacheMW, countingMW(&cacheEntries), retryMW, observeMW)...)
			q := query.New()
			r, err := query.ParseRanking(`list((any "databases"))`)
			if err != nil {
				t.Fatal(err)
			}
			q.Ranking = r
			for i := 0; i < 2; i++ {
				if _, err := conn.Query(context.Background(), q); err != nil {
					t.Fatalf("query %d: %v", i+1, err)
				}
			}
			got := counts{
				attempts:     src.attempts.Load(),
				cacheEntries: cacheEntries.Load(),
				observed:     reg.Counter(obs.L("starts_conn_calls_total", "source", "S", "op", "query")).Value(),
			}
			if got != tc.want {
				t.Errorf("counts = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// gatedConn parks every Query until release closes, counting the calls
// that reach it — the knob for holding a dispatch batch open while more
// callers join it.
type gatedConn struct {
	flakyConn
	calls   atomic.Int64
	release chan struct{}
}

func (g *gatedConn) Query(ctx context.Context, _ *query.Query) (*result.Results, error) {
	g.calls.Add(1)
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &result.Results{}, nil
}

// TestChainOrderWithDispatch pins where the dispatching middleware
// belongs: OUTSIDE the cache (so concurrent identical misses coalesce
// into one batch before they can stampede the fill) and INSIDE the
// observer (so coalesced calls still count). It also pins — by compiling
// — that dispatch.WrapConn satisfies client.Conn structurally.
func TestChainOrderWithDispatch(t *testing.T) {
	policy := resilient.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1}

	// observe(dispatch(cache(retry(conn)))): sequential traffic behaves
	// exactly as without dispatch — batches of one, retries inside one
	// cache entry, the hit never reaching the source.
	t.Run("sequential", func(t *testing.T) {
		src := &flakyConn{}
		reg := obs.NewRegistry()
		cache := qcache.New(qcache.Config{Metrics: reg})
		d := dispatch.New(dispatch.Config{})
		defer d.Close()
		conn := client.Chain(src,
			func(c client.Conn) client.Conn { return resilient.Wrap(c, policy, nil) },
			func(c client.Conn) client.Conn { return qcache.WrapConn(c, cache) },
			func(c client.Conn) client.Conn { return dispatch.WrapConn(c, d, dispatch.Limits{}) },
			func(c client.Conn) client.Conn { return obs.WrapConn(c, reg) },
		)
		q := query.New()
		r, err := query.ParseRanking(`list((any "databases"))`)
		if err != nil {
			t.Fatal(err)
		}
		q.Ranking = r
		for i := 0; i < 2; i++ {
			if _, err := conn.Query(context.Background(), q); err != nil {
				t.Fatalf("query %d: %v", i+1, err)
			}
		}
		if got := src.attempts.Load(); got != 2 {
			t.Errorf("source attempts = %d, want 2 (one retried miss, one cache hit)", got)
		}
		if got := reg.Counter(obs.L("starts_conn_calls_total", "source", "S", "op", "query")).Value(); got != 2 {
			t.Errorf("observed queries = %d, want 2", got)
		}
		for _, st := range d.Snapshot() {
			if st.Source == "S" && st.Batched != 0 {
				t.Errorf("sequential traffic batched %d calls, want 0", st.Batched)
			}
		}
	})

	// The payoff: N concurrent identical queries coalesce into ONE wire
	// call (and one cache fill) at the dispatch layer.
	t.Run("concurrent-coalescing", func(t *testing.T) {
		const callers = 8
		src := &gatedConn{release: make(chan struct{})}
		reg := obs.NewRegistry()
		cache := qcache.New(qcache.Config{Metrics: reg})
		d := dispatch.New(dispatch.Config{})
		defer d.Close()
		conn := client.Chain(src,
			func(c client.Conn) client.Conn { return resilient.Wrap(c, policy, nil) },
			func(c client.Conn) client.Conn { return qcache.WrapConn(c, cache) },
			func(c client.Conn) client.Conn { return dispatch.WrapConn(c, d, dispatch.Limits{}) },
			func(c client.Conn) client.Conn { return obs.WrapConn(c, reg) },
		)
		q := query.New()
		r, err := query.ParseRanking(`list((any "databases"))`)
		if err != nil {
			t.Fatal(err)
		}
		q.Ranking = r

		errs := make(chan error, callers)
		for i := 0; i < callers; i++ {
			go func() {
				_, err := conn.Query(context.Background(), q)
				errs <- err
			}()
		}
		// Release the gate only once all callers sit on the batch: one led,
		// the rest joined while its wire call was parked.
		deadline := time.Now().Add(2 * time.Second)
		for submitted := int64(0); submitted < callers && time.Now().Before(deadline); {
			submitted = 0
			for _, st := range d.Snapshot() {
				if st.Source == "S" {
					submitted = st.Submitted
				}
			}
			time.Sleep(time.Millisecond)
		}
		close(src.release)
		for i := 0; i < callers; i++ {
			if err := <-errs; err != nil {
				t.Fatalf("caller %d: %v", i, err)
			}
		}
		if got := src.calls.Load(); got != 1 {
			t.Errorf("wire calls = %d, want 1 for %d concurrent identical queries", got, callers)
		}
		for _, st := range d.Snapshot() {
			if st.Source == "S" && st.Batched != callers-1 {
				t.Errorf("batched = %d, want %d", st.Batched, callers-1)
			}
		}
	})
}
