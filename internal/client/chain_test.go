package client

import (
	"context"
	"testing"

	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// taggingConn stamps its tag onto the metadata SourceName on the way
// out, so the wrapping order of a chain is visible in the result.
type taggingConn struct {
	inner Conn
	tag   string
}

func (c *taggingConn) SourceID() string { return c.inner.SourceID() }

func (c *taggingConn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	m, err := c.inner.Metadata(ctx)
	if err != nil {
		return nil, err
	}
	m.SourceName += c.tag
	return m, nil
}

func (c *taggingConn) Summary(ctx context.Context) (*meta.ContentSummary, error) {
	return c.inner.Summary(ctx)
}

func (c *taggingConn) Sample(ctx context.Context) ([]*source.SampleEntry, error) {
	return c.inner.Sample(ctx)
}

func (c *taggingConn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	return c.inner.Query(ctx, q)
}

type baseConn struct{}

func (baseConn) SourceID() string { return "base" }

func (baseConn) Metadata(context.Context) (*meta.SourceMeta, error) {
	return &meta.SourceMeta{SourceID: "base", SourceName: "|"}, nil
}

func (baseConn) Summary(context.Context) (*meta.ContentSummary, error) {
	return &meta.ContentSummary{}, nil
}

func (baseConn) Sample(context.Context) ([]*source.SampleEntry, error) { return nil, nil }

func (baseConn) Query(context.Context, *query.Query) (*result.Results, error) {
	return &result.Results{}, nil
}

func tagger(tag string) Middleware {
	return func(c Conn) Conn { return &taggingConn{inner: c, tag: tag} }
}

func TestChainOrder(t *testing.T) {
	// The first middleware is innermost: it touches the response first,
	// so its tag lands closest to the base marker.
	conn := Chain(baseConn{}, tagger("a"), tagger("b"), tagger("c"))
	m, err := conn.Metadata(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.SourceName != "|abc" {
		t.Errorf("SourceName = %q, want %q", m.SourceName, "|abc")
	}
}

func TestChainSkipsNilAndEmpty(t *testing.T) {
	base := baseConn{}
	if got := Chain(base); got != Conn(base) {
		t.Errorf("empty chain should return the conn unchanged")
	}
	conn := Chain(base, nil, tagger("x"), nil)
	m, err := conn.Metadata(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.SourceName != "|x" {
		t.Errorf("SourceName = %q, want %q", m.SourceName, "|x")
	}
}
