// Package client implements the metasearcher side of the STARTS protocol:
// harvesting resource descriptions, source metadata, content summaries and
// sample results, and submitting queries — over HTTP or directly against
// in-process sources, behind one Conn interface so the metasearch core is
// transport-neutral.
package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// Conn is one queryable STARTS source as seen by a metasearcher.
type Conn interface {
	// SourceID identifies the source.
	SourceID() string
	// Metadata fetches the source's MBasic-1 metadata.
	Metadata(ctx context.Context) (*meta.SourceMeta, error)
	// Summary fetches the source's content summary.
	Summary(ctx context.Context) (*meta.ContentSummary, error)
	// Sample fetches the source's sample-database results.
	Sample(ctx context.Context) ([]*source.SampleEntry, error)
	// Query evaluates a query at the source.
	Query(ctx context.Context, q *query.Query) (*result.Results, error)
}

// Middleware decorates a Conn with one cross-cutting concern — retries,
// fault injection, instrumentation — so wrapping order is explicit and
// composable at the call site instead of buried in nested constructors.
type Middleware func(Conn) Conn

// Chain wraps conn with the given middlewares. The first middleware ends
// up innermost (closest to the source) and the last outermost (it sees
// every call first):
//
//	Chain(conn, faults, observe, retry)
//
// builds retry(observe(faults(conn))) — faults are injected at the
// source, the observer times every attempt, and the retrier decides
// which failures to re-run. Nil middlewares are skipped.
func Chain(conn Conn, mw ...Middleware) Conn {
	for _, m := range mw {
		if m != nil {
			conn = m(conn)
		}
	}
	return conn
}

// maxResponseBytes bounds response bodies read from remote sources.
const maxResponseBytes = 64 << 20

// Client fetches STARTS objects over HTTP.
type Client struct {
	hc *http.Client
}

// NewClient returns an HTTP STARTS client. A nil httpClient uses a
// default with a 30-second timeout and a transport tuned for the
// metasearch access pattern: a handful of sources each receiving many
// small requests, so idle keep-alive connections per host are worth far
// more than the net/http default of two.
func NewClient(httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 32,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return &Client{hc: httpClient}
}

func (c *Client) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

func (c *Client) post(ctx context.Context, url string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-soif")
	return c.do(req)
}

func (c *Client) do(req *http.Request) ([]byte, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<10))
		// Drain the rest so the keep-alive connection is reusable.
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, &StatusError{
			Method: req.Method, URL: req.URL.String(),
			StatusCode: resp.StatusCode, Status: resp.Status,
			Snippet: truncate(snippet),
		}
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, fmt.Errorf("client: reading %s: %w", req.URL, err)
	}
	return data, nil
}

// StatusError is a non-200 HTTP response from a source. It carries the
// status code so callers (notably the retry layer) can tell transient
// 5xx conditions from permanent 4xx rejections.
type StatusError struct {
	// Method and URL identify the failed request.
	Method string
	URL    string
	// StatusCode and Status are the response's numeric and textual status.
	StatusCode int
	Status     string
	// Snippet is the start of the error body.
	Snippet string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("client: %s %s: %s: %s", e.Method, e.URL, e.Status, e.Snippet)
}

// Temporary reports whether the status is worth retrying: server errors,
// request timeouts and throttling are; other client errors are not.
func (e *StatusError) Temporary() bool {
	return e.StatusCode >= 500 ||
		e.StatusCode == http.StatusRequestTimeout ||
		e.StatusCode == http.StatusTooManyRequests
}

func truncate(b []byte) string {
	const n = 200
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}

// Resource fetches and decodes an @SResource description.
func (c *Client) Resource(ctx context.Context, url string) (*meta.Resource, error) {
	data, err := c.get(ctx, url)
	if err != nil {
		return nil, err
	}
	return meta.ParseResource(data)
}

// Metadata fetches and decodes an @SMetaAttributes object.
func (c *Client) Metadata(ctx context.Context, url string) (*meta.SourceMeta, error) {
	data, err := c.get(ctx, url)
	if err != nil {
		return nil, err
	}
	return meta.ParseMeta(data)
}

// Summary fetches and decodes an @SContentSummary object.
func (c *Client) Summary(ctx context.Context, url string) (*meta.ContentSummary, error) {
	data, err := c.get(ctx, url)
	if err != nil {
		return nil, err
	}
	return meta.ParseSummary(data)
}

// Sample fetches and decodes a sample-database results stream.
func (c *Client) Sample(ctx context.Context, url string) ([]*source.SampleEntry, error) {
	data, err := c.get(ctx, url)
	if err != nil {
		return nil, err
	}
	return source.ParseSample(data)
}

// Query submits a query to a source's query URL and decodes the results.
func (c *Client) Query(ctx context.Context, url string, q *query.Query) (*result.Results, error) {
	body, err := q.Marshal()
	if err != nil {
		return nil, err
	}
	data, err := c.post(ctx, url, body)
	if err != nil {
		return nil, err
	}
	return result.Parse(data)
}

// HTTPConn is a Conn over a remote source whose endpoints were learned
// from a resource description and source metadata.
type HTTPConn struct {
	client *Client
	id     string
	// MetadataURL is the entry point (from the resource's SourceList);
	// the query/summary/sample URLs come from the fetched metadata.
	metadataURL string
	now         func() time.Time

	mu     sync.Mutex
	cached *meta.SourceMeta
}

// NewHTTPConn returns a Conn for the source with the given metadata URL.
func NewHTTPConn(c *Client, sourceID, metadataURL string) *HTTPConn {
	return &HTTPConn{client: c, id: sourceID, metadataURL: metadataURL, now: time.Now}
}

// SourceID implements Conn.
func (h *HTTPConn) SourceID() string { return h.id }

// Metadata implements Conn, caching the fetched object for URL discovery.
func (h *HTTPConn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	m, err := h.client.Metadata(ctx, h.metadataURL)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.cached = m
	h.mu.Unlock()
	return m, nil
}

// metaExpired mirrors core's cache-expiry rule: a zero DateExpires never
// expires.
func metaExpired(m *meta.SourceMeta, now time.Time) bool {
	return !m.DateExpires.IsZero() && now.After(m.DateExpires)
}

func (h *HTTPConn) meta(ctx context.Context) (*meta.SourceMeta, error) {
	h.mu.Lock()
	cached := h.cached
	h.mu.Unlock()
	if cached != nil && !metaExpired(cached, h.now()) {
		return cached, nil
	}
	return h.Metadata(ctx)
}

// Summary implements Conn.
func (h *HTTPConn) Summary(ctx context.Context) (*meta.ContentSummary, error) {
	m, err := h.meta(ctx)
	if err != nil {
		return nil, err
	}
	return h.client.Summary(ctx, m.ContentSummaryLinkage)
}

// Sample implements Conn.
func (h *HTTPConn) Sample(ctx context.Context) ([]*source.SampleEntry, error) {
	m, err := h.meta(ctx)
	if err != nil {
		return nil, err
	}
	return h.client.Sample(ctx, m.SampleDatabaseResults)
}

// Query implements Conn.
func (h *HTTPConn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	m, err := h.meta(ctx)
	if err != nil {
		return nil, err
	}
	return h.client.Query(ctx, m.Linkage, q)
}

// Discover fetches a resource description and returns a Conn per source.
func (c *Client) Discover(ctx context.Context, resourceURL string) ([]Conn, error) {
	res, err := c.Resource(ctx, resourceURL)
	if err != nil {
		return nil, err
	}
	conns := make([]Conn, 0, len(res.Entries))
	for _, e := range res.Entries {
		conns = append(conns, NewHTTPConn(c, e.SourceID, e.MetadataURL))
	}
	return conns, nil
}

// LocalConn is a Conn over an in-process source, for embedding and tests.
type LocalConn struct {
	src *source.Source
	res *source.Resource // optional: enables multi-source queries
}

// NewLocalConn returns a Conn over an in-process source. res may be nil;
// when set, queries naming additional sources route through the resource.
func NewLocalConn(src *source.Source, res *source.Resource) *LocalConn {
	return &LocalConn{src: src, res: res}
}

// SourceID implements Conn.
func (l *LocalConn) SourceID() string { return l.src.ID() }

// Metadata implements Conn.
func (l *LocalConn) Metadata(context.Context) (*meta.SourceMeta, error) {
	return l.src.Metadata(), nil
}

// Summary implements Conn.
func (l *LocalConn) Summary(context.Context) (*meta.ContentSummary, error) {
	return l.src.ContentSummary(), nil
}

// Sample implements Conn.
func (l *LocalConn) Sample(context.Context) ([]*source.SampleEntry, error) {
	return l.src.SampleResults()
}

// Query implements Conn.
func (l *LocalConn) Query(_ context.Context, q *query.Query) (*result.Results, error) {
	if len(q.Sources) > 0 && l.res != nil {
		return l.res.Search(l.src.ID(), q)
	}
	return l.src.Search(q)
}
