package obs

import (
	"context"
	"time"

	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// SourceConn mirrors client.Conn method-for-method. obs declares its own
// copy of the interface instead of importing the client package, so the
// dependency keeps pointing outward: client-side wrappers, servers and
// core all import obs, and obs imports only the leaf object packages.
// Any client.Conn satisfies SourceConn and vice versa (Go interfaces are
// structural); the facade asserts the equivalence.
type SourceConn interface {
	SourceID() string
	Metadata(ctx context.Context) (*meta.SourceMeta, error)
	Summary(ctx context.Context) (*meta.ContentSummary, error)
	Sample(ctx context.Context) ([]*source.SampleEntry, error)
	Query(ctx context.Context, q *query.Query) (*result.Results, error)
}

// Conn wraps a source connection with instrumentation: every call opens
// a child span under the context's current span (so per-source fan-out
// spans show the conn-level timing nested inside them) and records
// per-source, per-operation call counts, error counts and latency
// histograms into the registry.
//
// Metric names:
//
//	starts_conn_calls_total{source,op}
//	starts_conn_errors_total{source,op}
//	starts_conn_seconds{source,op} (histogram)
type Conn struct {
	inner SourceConn
	reg   *Registry
}

var _ SourceConn = (*Conn)(nil)

// WrapConn returns an instrumented wrapper around inner recording into
// reg. A nil registry still produces spans; a bare context still records
// metrics — each half degrades independently. A batch-capable inner
// (BatchSourceConn) gets the batch-capable wrapper, so the capability
// passes through the chain instead of silently downgrading.
func WrapConn(inner SourceConn, reg *Registry) SourceConn {
	if bi, ok := inner.(BatchSourceConn); ok {
		return WrapBatchConn(bi, reg)
	}
	return newConn(inner, reg)
}

func newConn(inner SourceConn, reg *Registry) *Conn {
	return &Conn{inner: inner, reg: reg}
}

// observe runs one instrumented call.
func observe[T any](c *Conn, ctx context.Context, op string, f func(context.Context) (T, error)) (T, error) {
	id := c.inner.SourceID()
	sp := SpanFrom(ctx).Child("conn." + op)
	sp.SetSource(id)
	start := time.Now()
	v, err := f(WithSpan(ctx, sp))
	elapsed := time.Since(start)
	sp.End(err)
	c.reg.Counter(L("starts_conn_calls_total", "source", id, "op", op)).Inc()
	if err != nil {
		c.reg.Counter(L("starts_conn_errors_total", "source", id, "op", op)).Inc()
	}
	c.reg.Histogram(L("starts_conn_seconds", "source", id, "op", op)).Observe(elapsed)
	return v, err
}

// SourceID implements client.Conn.
func (c *Conn) SourceID() string { return c.inner.SourceID() }

// Metadata implements client.Conn.
func (c *Conn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	return observe(c, ctx, "metadata", c.inner.Metadata)
}

// Summary implements client.Conn.
func (c *Conn) Summary(ctx context.Context) (*meta.ContentSummary, error) {
	return observe(c, ctx, "summary", c.inner.Summary)
}

// Sample implements client.Conn.
func (c *Conn) Sample(ctx context.Context) ([]*source.SampleEntry, error) {
	return observe(c, ctx, "sample", c.inner.Sample)
}

// Query implements client.Conn.
func (c *Conn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	res, err := observe(c, ctx, "query", func(ctx context.Context) (*result.Results, error) {
		return c.inner.Query(ctx, q)
	})
	if err == nil && res != nil {
		c.reg.Counter(L("starts_conn_docs_total", "source", c.inner.SourceID())).
			Add(int64(len(res.Documents)))
	}
	return res, err
}
