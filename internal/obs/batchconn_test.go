package obs

import (
	"context"
	"errors"
	"testing"

	"starts/internal/query"
	"starts/internal/result"
)

// stubBatchConn is a stubConn that also speaks QueryBatch: item i
// returns i documents, except indexes listed in failAt, which fail.
type stubBatchConn struct {
	stubConn
	failAt map[int]error
}

func (s *stubBatchConn) QueryBatch(_ context.Context, qs []*query.Query) ([]*result.Results, []error) {
	results := make([]*result.Results, len(qs))
	errs := make([]error, len(qs))
	for i := range qs {
		if err := s.failAt[i]; err != nil {
			errs[i] = err
			continue
		}
		results[i] = &result.Results{Documents: make([]*result.Document, i)}
	}
	return results, errs
}

// TestWrapConnUpgradesBatchCapability pins the capability-matching rule:
// wrapping a batch-capable inner must yield a batch-capable wrapper, not
// silently downgrade to per-query calls.
func TestWrapConnUpgradesBatchCapability(t *testing.T) {
	c := WrapConn(&stubBatchConn{stubConn: stubConn{id: "bs"}}, NewRegistry())
	if _, ok := c.(BatchSourceConn); !ok {
		t.Fatalf("WrapConn(batch inner) = %T, want a BatchSourceConn", c)
	}
	plain := WrapConn(&stubConn{id: "ps"}, NewRegistry())
	if _, ok := plain.(BatchSourceConn); ok {
		t.Fatalf("WrapConn(plain inner) = %T claims batch capability it cannot serve", plain)
	}
}

// TestBatchConnRecordsWireAndItemMetrics pins the batch observability
// contract: one wire-call observation (op "query-batch") feeding the
// starts_wire_batch_size histogram, plus per-item outcomes (op
// "query-item") so error rates stay comparable with the unbatched path.
func TestBatchConnRecordsWireAndItemMetrics(t *testing.T) {
	reg := NewRegistry()
	inner := &stubBatchConn{
		stubConn: stubConn{id: "bs"},
		failAt:   map[int]error{1: errors.New("item exploded")},
	}
	c := WrapConn(inner, reg).(BatchSourceConn)

	tr := NewTrace("q")
	sp := tr.StartSpan("query bs")
	ctx := WithSpan(context.Background(), sp)
	qs := []*query.Query{query.New(), query.New(), query.New()}
	results, errs := c.QueryBatch(ctx, qs)
	sp.End(nil)
	if len(results) != 3 || len(errs) != 3 {
		t.Fatalf("got %d results, %d errs", len(results), len(errs))
	}
	if errs[1] == nil || errs[0] != nil || errs[2] != nil {
		t.Fatalf("errs = %v, want only item 1 failing", errs)
	}

	// One wire call, observed once at its true size.
	if got := reg.Counter(L("starts_conn_calls_total", "source", "bs", "op", "query-batch")).Value(); got != 1 {
		t.Errorf("query-batch calls = %d, want 1", got)
	}
	h := reg.HistogramBuckets(L(MWireBatchSize, "source", "bs"), batchSizeBounds)
	if got := h.Count(); got != 1 {
		t.Errorf("wire batch size observations = %d, want 1", got)
	}
	if got := reg.Histogram(L("starts_conn_seconds", "source", "bs", "op", "query-batch")).Count(); got != 1 {
		t.Errorf("query-batch seconds observations = %d, want 1", got)
	}

	// Every item shows up individually: 3 calls, 1 error, and the
	// healthy items' documents (0 + 2) counted once.
	if got := reg.Counter(L("starts_conn_calls_total", "source", "bs", "op", "query-item")).Value(); got != 3 {
		t.Errorf("query-item calls = %d, want 3", got)
	}
	if got := reg.Counter(L("starts_conn_errors_total", "source", "bs", "op", "query-item")).Value(); got != 1 {
		t.Errorf("query-item errors = %d, want 1", got)
	}
	if got := reg.Counter(L("starts_conn_errors_total", "source", "bs", "op", "query-batch")).Value(); got != 1 {
		t.Errorf("query-batch errors = %d, want 1 (any failed item marks the call)", got)
	}
	if got := reg.Counter(L("starts_conn_docs_total", "source", "bs")).Value(); got != 2 {
		t.Errorf("docs = %d, want 2", got)
	}

	ti := tr.Snapshot()
	if hit := ti.Find("conn.query-batch"); hit == nil || hit.Source != "bs" {
		t.Errorf("conn.query-batch span = %+v", hit)
	}
}

// TestBatchConnNilRegistry: metrics degrade, the call still works.
func TestBatchConnNilRegistry(t *testing.T) {
	c := WrapConn(&stubBatchConn{stubConn: stubConn{id: "bs"}}, nil).(BatchSourceConn)
	results, errs := c.QueryBatch(context.Background(), []*query.Query{query.New()})
	if len(results) != 1 || len(errs) != 1 || errs[0] != nil {
		t.Fatalf("results = %v, errs = %v", results, errs)
	}
}
