package obs

import (
	"context"
	"strconv"
	"time"

	"starts/internal/query"
	"starts/internal/result"
)

// BatchSourceConn is a SourceConn that can evaluate several queries in
// one wire call (structurally client.BatchConn; declared here so the
// dependency keeps pointing outward).
type BatchSourceConn interface {
	SourceConn
	QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error)
}

// batchSizeBounds are the bucket bounds of the starts_wire_batch_size
// histogram: counts, not durations (a size n is observed as
// time.Duration(n)).
var batchSizeBounds = []time.Duration{1, 2, 4, 8, 16, 32, 64}

// BatchConn instruments a batch-capable source connection. On top of
// the per-call metrics the plain wrapper records, each QueryBatch
// observes the wire call once (op "query-batch") plus every item's
// outcome (op "query-item"), and feeds the batch size into
// starts_wire_batch_size — so wire-level multiplexing never becomes an
// observability blind spot: the histogram shows how well drains
// amortize, and the per-item counters keep error rates comparable with
// the unbatched path.
type BatchConn struct {
	*Conn
	binner BatchSourceConn
}

var _ BatchSourceConn = (*BatchConn)(nil)

// WrapBatchConn wraps a batch-capable inner like WrapConn. Prefer
// WrapConn, which picks this variant automatically.
func WrapBatchConn(inner BatchSourceConn, reg *Registry) *BatchConn {
	return &BatchConn{Conn: newConn(inner, reg), binner: inner}
}

// QueryBatch implements BatchSourceConn.
func (c *BatchConn) QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error) {
	id := c.binner.SourceID()
	sp := SpanFrom(ctx).Child("conn.query-batch")
	sp.SetSource(id)
	sp.Annotate("items", strconv.Itoa(len(qs)))
	start := time.Now()
	results, errs := c.binner.QueryBatch(WithSpan(ctx, sp), qs)
	elapsed := time.Since(start)
	c.reg.Counter(L("starts_conn_calls_total", "source", id, "op", "query-batch")).Inc()
	c.reg.Histogram(L("starts_conn_seconds", "source", id, "op", "query-batch")).Observe(elapsed)
	c.reg.HistogramBuckets(L(MWireBatchSize, "source", id), batchSizeBounds).
		Observe(time.Duration(len(qs)))
	var firstErr error
	var docs, failed int64
	for i := range qs {
		c.reg.Counter(L("starts_conn_calls_total", "source", id, "op", "query-item")).Inc()
		var err error
		if i < len(errs) {
			err = errs[i]
		}
		switch {
		case err != nil:
			failed++
			c.reg.Counter(L("starts_conn_errors_total", "source", id, "op", "query-item")).Inc()
			if firstErr == nil {
				firstErr = err
			}
		case i < len(results) && results[i] != nil:
			docs += int64(len(results[i].Documents))
		}
	}
	if docs > 0 {
		c.reg.Counter(L("starts_conn_docs_total", "source", id)).Add(docs)
	}
	if failed > 0 {
		sp.Annotate("failed_items", strconv.FormatInt(failed, 10))
		c.reg.Counter(L("starts_conn_errors_total", "source", id, "op", "query-batch")).Inc()
	}
	sp.End(firstErr)
	return results, errs
}
