package obs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("q1")
	h := tr.StartSpan("harvest")
	c := h.Child("harvest cs")
	c.SetSource("cs")
	c.End(nil)
	h.Annotate("errors", "0")
	h.End(nil)
	f := tr.StartSpan("fanout")
	bad := f.Child("query bad")
	bad.SetSource("bad")
	bad.End(errors.New("source down"))
	f.End(nil)
	tr.Finish()

	ti := tr.Snapshot()
	if ti.Query != "q1" {
		t.Errorf("Query = %q", ti.Query)
	}
	if got := ti.SpanCount(); got != 4 {
		t.Errorf("SpanCount = %d, want 4", got)
	}
	if len(ti.Spans) != 2 || ti.Spans[0].Name != "harvest" || ti.Spans[1].Name != "fanout" {
		t.Fatalf("top-level spans = %+v", ti.Spans)
	}
	if v, ok := ti.Spans[0].Attr("errors"); !ok || v != "0" {
		t.Errorf("harvest errors attr = %q %v", v, ok)
	}
	hit := ti.Find("query bad")
	if hit == nil || hit.Source != "bad" || hit.Err != "source down" {
		t.Errorf("Find(query bad) = %+v", hit)
	}
	if ti.Find("no such span") != nil {
		t.Error("Find should miss")
	}
	tree := ti.Tree()
	for _, want := range []string{`trace "q1"`, "├─ harvest", "│  └─ harvest cs [cs]", "└─ fanout", "ERR: source down"} {
		if !strings.Contains(tree, want) {
			t.Errorf("Tree missing %q:\n%s", want, tree)
		}
	}
}

func TestSpanFirstEndWins(t *testing.T) {
	tr := NewTrace("q")
	sp := tr.StartSpan("s")
	sp.End(nil)
	sp.End(errors.New("late"))
	if got := tr.Snapshot().Spans[0].Err; got != "" {
		t.Errorf("second End should not overwrite: err = %q", got)
	}
}

func TestTraceBeginResets(t *testing.T) {
	var tr Trace // zero value is usable, as WithTrace promises
	tr.Begin("first")
	tr.StartSpan("s").End(nil)
	tr.Begin("second")
	ti := tr.Snapshot()
	if ti.Query != "second" || len(ti.Spans) != 0 {
		t.Errorf("Begin should reset: %+v", ti)
	}
}

func TestNilTraceAndSpanNoOp(t *testing.T) {
	var tr *Trace
	tr.Begin("x")
	tr.Finish()
	sp := tr.StartSpan("s")
	if sp != nil {
		t.Fatalf("nil trace StartSpan = %v", sp)
	}
	// None of these may panic.
	sp.SetSource("cs")
	sp.Annotate("k", "v")
	sp.End(errors.New("x"))
	if c := sp.Child("nested"); c != nil {
		t.Errorf("nil span Child = %v", c)
	}
	if ti := tr.Snapshot(); ti.SpanCount() != 0 {
		t.Errorf("nil trace snapshot = %+v", ti)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("concurrent")
	f := tr.StartSpan("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := f.Child("query")
			sp.Annotate("k", "v")
			sp.End(nil)
		}()
	}
	wg.Wait()
	f.End(nil)
	if got := tr.Snapshot().SpanCount(); got != 33 {
		t.Errorf("SpanCount = %d, want 33", got)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(2)
	if got := r.Snapshots(); len(got) != 0 {
		t.Errorf("empty ring = %v", got)
	}
	for _, q := range []string{"a", "b", "c"} {
		r.Add(NewTrace(q))
	}
	got := r.Snapshots()
	if len(got) != 2 || got[0].Query != "c" || got[1].Query != "b" {
		t.Errorf("ring after overflow = %+v", got)
	}
	r.Add(nil) // no-op
	var nilRing *TraceRing
	nilRing.Add(NewTrace("x"))
	if nilRing.Snapshots() != nil {
		t.Error("nil ring should be inert")
	}
}

func TestContextCarriers(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil || SpanFrom(ctx) != nil || MetricsFrom(ctx) != nil {
		t.Fatal("bare context should carry nothing")
	}
	tr := NewTrace("q")
	sp := tr.StartSpan("stage")
	reg := NewRegistry()
	ctx = WithMetrics(WithSpan(WithTrace(ctx, tr), sp), reg)
	if TraceFrom(ctx) != tr || SpanFrom(ctx) != sp || MetricsFrom(ctx) != reg {
		t.Error("context carriers should round-trip")
	}
	Annotate(ctx, "retry", "attempt 2")
	if v, ok := tr.Snapshot().Spans[0].Attr("retry"); !ok || v != "attempt 2" {
		t.Errorf("Annotate via context = %q %v", v, ok)
	}
	// Annotating a bare context must not panic.
	Annotate(context.Background(), "k", "v")
}
