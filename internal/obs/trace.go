// Package obs is the observability substrate of the metasearcher: a
// per-query Trace (a timed span tree carried through context.Context), a
// dependency-free metrics Registry (counters, gauges, fixed-bucket
// latency histograms), an instrumented client.Conn wrapper, and the HTTP
// handlers that surface both (/metrics, /debug/last-traces).
//
// obs deliberately imports nothing from internal/core — the dependency
// points outward, like core.BreakerGate: core, client wrappers
// (resilient, faulty) and servers all import obs, never the reverse, so
// any layer can annotate the current span or record a metric without an
// import cycle. Traces and the registry travel via context (WithTrace,
// WithSpan, WithMetrics), which is how a retry wrapper deep inside a
// fan-out reaches the span that core opened for its source.
//
// Every Trace and Span method is safe on a nil receiver (a no-op), so
// instrumented code never guards "is tracing on?": SpanFrom on a bare
// context returns nil and the annotations simply vanish.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace records one operation's timed span tree. The zero value is ready
// to use: Begin stamps the query and start time, StartSpan opens stage
// spans, Finish stamps the total duration. All methods are safe for
// concurrent use (fan-out spans start and end from many goroutines) and
// safe on a nil *Trace.
type Trace struct {
	mu    sync.Mutex
	query string
	start time.Time
	dur   time.Duration
	spans []*Span
}

// NewTrace returns a started trace for the given query description.
func NewTrace(query string) *Trace {
	t := &Trace{}
	t.Begin(query)
	return t
}

// Begin (re)initializes the trace: it stamps the query description and
// the start time and drops any prior spans, so a caller-owned Trace can
// be reused across searches.
func (t *Trace) Begin(query string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.query = query
	t.start = time.Now()
	t.dur = 0
	t.spans = nil
}

// Finish stamps the trace's total duration. Later Finish calls win, so a
// deferred Finish after late annotations is fine.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dur = time.Since(t.start)
}

// StartSpan opens a top-level span (a pipeline stage).
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span is one timed operation within a trace. Spans nest (Child) and
// carry ordered key=value annotations. All methods are safe on a nil
// receiver and safe for concurrent use.
type Span struct {
	t        *Trace
	name     string
	source   string
	start    time.Time
	dur      time.Duration
	ended    bool
	err      string
	attrs    []Attr
	children []*Span
}

// Attr is one span annotation.
type Attr struct {
	Key, Value string
}

// Child opens a nested span under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{t: s.t, name: name, start: time.Now()}
	s.t.mu.Lock()
	s.children = append(s.children, c)
	s.t.mu.Unlock()
	return c
}

// SetSource tags the span with the source it concerns.
func (s *Span) SetSource(id string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.source = id
	s.t.mu.Unlock()
}

// Annotate appends a key=value annotation.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.t.mu.Unlock()
}

// End closes the span, recording its duration and error (nil err leaves
// the span clean). The first End wins; later calls are no-ops, so a
// deferred End is a safe backstop.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if err != nil {
		s.err = err.Error()
	}
}

// SpanInfo is an immutable snapshot of a Span, safe to hold after the
// trace moves on.
type SpanInfo struct {
	Name     string
	Source   string
	Start    time.Time
	Duration time.Duration
	Err      string
	Attrs    []Attr
	Children []SpanInfo
}

// Attr returns the value of the first annotation with the given key, and
// whether one exists.
func (si SpanInfo) Attr(key string) (string, bool) {
	for _, a := range si.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// TraceInfo is an immutable snapshot of a whole Trace.
type TraceInfo struct {
	Query    string
	Start    time.Time
	Duration time.Duration
	Spans    []SpanInfo
}

// Snapshot captures the trace's current state as plain values. A nil
// trace snapshots to the zero TraceInfo.
func (t *Trace) Snapshot() TraceInfo {
	if t == nil {
		return TraceInfo{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ti := TraceInfo{Query: t.query, Start: t.start, Duration: t.dur}
	ti.Spans = snapshotSpans(t.spans)
	return ti
}

// snapshotSpans copies a span forest; the caller holds the trace lock.
func snapshotSpans(spans []*Span) []SpanInfo {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanInfo, len(spans))
	for i, s := range spans {
		out[i] = SpanInfo{
			Name: s.name, Source: s.source, Start: s.start,
			Duration: s.dur, Err: s.err,
			Attrs:    append([]Attr(nil), s.attrs...),
			Children: snapshotSpans(s.children),
		}
	}
	return out
}

// SpanCount is the total number of spans in the snapshot, at any depth.
func (ti TraceInfo) SpanCount() int {
	return countSpans(ti.Spans)
}

func countSpans(spans []SpanInfo) int {
	n := len(spans)
	for _, s := range spans {
		n += countSpans(s.Children)
	}
	return n
}

// Find returns the first span with the given name in depth-first order,
// or nil.
func (ti TraceInfo) Find(name string) *SpanInfo {
	return findSpan(ti.Spans, name)
}

func findSpan(spans []SpanInfo, name string) *SpanInfo {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
		if hit := findSpan(spans[i].Children, name); hit != nil {
			return hit
		}
	}
	return nil
}

// Tree renders the snapshot as an indented text tree, one span per line:
//
//	trace "databases" 12.3ms
//	├─ harvest 1.1ms hits=3 misses=0
//	├─ fanout 10.8ms
//	│  ├─ query [cs] 9.2ms docs=5
//	│  └─ query [bad] 10.7ms ERR: injected failure
//	└─ merge 0.2ms strategy=term-stats
func (ti TraceInfo) Tree() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %q %s\n", ti.Query, round(ti.Duration))
	renderSpans(&b, ti.Spans, "")
	return b.String()
}

func renderSpans(b *strings.Builder, spans []SpanInfo, prefix string) {
	for i, s := range spans {
		branch, cont := "├─ ", "│  "
		if i == len(spans)-1 {
			branch, cont = "└─ ", "   "
		}
		b.WriteString(prefix + branch + s.Name)
		if s.Source != "" {
			fmt.Fprintf(b, " [%s]", s.Source)
		}
		fmt.Fprintf(b, " %s", round(s.Duration))
		for _, a := range s.Attrs {
			fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
		}
		if s.Err != "" {
			fmt.Fprintf(b, " ERR: %s", s.Err)
		}
		b.WriteByte('\n')
		renderSpans(b, s.Children, prefix+cont)
	}
}

// round trims durations to a display-friendly precision.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	}
	return d.Round(100 * time.Nanosecond)
}

// TraceRing keeps the last N trace snapshots, newest first — the backing
// store of /debug/last-traces.
type TraceRing struct {
	mu   sync.Mutex
	buf  []TraceInfo
	next int
	full bool
}

// NewTraceRing returns a ring holding up to n traces (minimum 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]TraceInfo, n)}
}

// Add snapshots the trace into the ring. Nil rings and nil traces are
// no-ops.
func (r *TraceRing) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	ti := t.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = ti
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Snapshots lists the stored traces, newest first.
func (r *TraceRing) Snapshots() []TraceInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]TraceInfo, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
