package obs

import (
	"fmt"
	"net/http"
)

// Handler serves the registry's Render output as text/plain — the
// /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = fmt.Fprint(w, r.Render())
	})
}

// Handler serves the ring's trace trees as text/plain, newest first —
// the /debug/last-traces endpoint.
func (tr *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snaps := tr.Snapshots()
		if len(snaps) == 0 {
			_, _ = fmt.Fprintln(w, "no traces recorded yet")
			return
		}
		for i, ti := range snaps {
			fmt.Fprintf(w, "#%d started %s\n%s\n", i, ti.Start.Format("15:04:05.000"), ti.Tree())
		}
	})
}
