package obs

import (
	"strings"
	"testing"
	"time"
)

func TestLabelEncoding(t *testing.T) {
	cases := []struct {
		name string
		kv   []string
		want string
	}{
		{"m", nil, "m"},
		{"m", []string{"source", "cs"}, `m{source="cs"}`},
		{"m", []string{"a", "1", "b", "2"}, `m{a="1",b="2"}`},
		{"m", []string{"odd"}, "m"},
	}
	for _, c := range cases {
		if got := L(c.name, c.kv...); got != c.want {
			t.Errorf("L(%q, %v) = %q, want %q", c.name, c.kv, got, c.want)
		}
	}
}

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d", c.Value())
	}
	if reg.Counter("c") != c {
		t.Error("same name should return the same counter")
	}
	g := reg.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramBuckets("h", []time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // first bucket
	h.Observe(time.Millisecond)       // boundary lands in first bucket (le is inclusive)
	h.Observe(5 * time.Millisecond)   // second bucket
	h.Observe(time.Minute)            // +Inf overflow
	if got := h.BucketCounts(); len(got) != 3 || got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Errorf("BucketCounts = %v", got)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if want := 6*time.Millisecond + 500*time.Microsecond + time.Minute; h.Sum() != want {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
}

func TestRenderFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(L("starts_source_queries_total", "source", "cs")).Inc()
	reg.Gauge("starts_sources_registered").Set(3)
	h := reg.HistogramBuckets(L("starts_search_seconds", "kind", "q"),
		[]time.Duration{time.Millisecond, time.Second})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second)
	out := reg.Render()
	for _, want := range []string{
		"starts_source_queries_total{source=\"cs\"} 1\n",
		"starts_sources_registered 3\n",
		// Cumulative buckets, label sets folded together, suffix before labels.
		"starts_search_seconds_bucket{kind=\"q\",le=\"0.001\"} 1\n",
		"starts_search_seconds_bucket{kind=\"q\",le=\"1\"} 1\n",
		"starts_search_seconds_bucket{kind=\"q\",le=\"+Inf\"} 2\n",
		"starts_search_seconds_sum{kind=\"q\"} 2.0005\n",
		"starts_search_seconds_count{kind=\"q\"} 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestNilRegistryNoOps(t *testing.T) {
	var reg *Registry
	// Nothing here may panic; the returned nil metrics must be inert.
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(time.Second)
	if reg.Counter("c").Value() != 0 || reg.Gauge("g").Value() != 0 || reg.Histogram("h").Count() != 0 {
		t.Error("nil registry metrics should read zero")
	}
	if reg.Render() != "" {
		t.Error("nil registry should render empty")
	}
}

func TestHistogramQuantile(t *testing.T) {
	bounds := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	reg := NewRegistry()
	h := reg.HistogramBuckets("q", bounds)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// 10 observations in (10ms, 20ms]: every quantile interpolates inside
	// that bucket, linearly from its lower to its upper edge.
	for i := 0; i < 10; i++ {
		h.Observe(15 * time.Millisecond)
	}
	if got := h.Quantile(0.5); got != 15*time.Millisecond {
		t.Errorf("p50 of one mid bucket = %v, want 15ms", got)
	}
	if got := h.Quantile(1); got != 20*time.Millisecond {
		t.Errorf("p100 = %v, want the bucket's upper edge 20ms", got)
	}
	// Add 10 in (0, 10ms]: p50 lands exactly on the first bucket edge and
	// p75 halfway through the second bucket.
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	if got := h.Quantile(0.5); got != 10*time.Millisecond {
		t.Errorf("p50 of 10+10 = %v, want 10ms", got)
	}
	if got := h.Quantile(0.75); got != 15*time.Millisecond {
		t.Errorf("p75 of 10+10 = %v, want 15ms", got)
	}
	// Observations beyond the last bound clamp to the highest finite edge,
	// exactly as histogram_quantile does.
	for i := 0; i < 100; i++ {
		h.Observe(time.Second)
	}
	if got := h.Quantile(0.99); got != 40*time.Millisecond {
		t.Errorf("p99 with overflow = %v, want clamp to 40ms", got)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 || nilH.Bounds() != nil {
		t.Error("nil histogram should read zero")
	}
}

func TestQuantileOfWindowDeltas(t *testing.T) {
	bounds := []time.Duration{10 * time.Millisecond, 100 * time.Millisecond}
	reg := NewRegistry()
	h := reg.HistogramBuckets("q", bounds)
	for i := 0; i < 8; i++ {
		h.Observe(time.Millisecond)
	}
	before := h.BucketCounts()
	for i := 0; i < 4; i++ {
		h.Observe(50 * time.Millisecond)
	}
	after := h.BucketCounts()
	delta := make([]int64, len(after))
	for i := range after {
		delta[i] = after[i] - before[i]
	}
	// The window between snapshots holds only the four slow observations:
	// its p50 must sit inside the second bucket despite the fast history.
	got := QuantileOf(bounds, delta, 0.5)
	if got <= 10*time.Millisecond || got > 100*time.Millisecond {
		t.Errorf("windowed p50 = %v, want inside (10ms, 100ms]", got)
	}
	if QuantileOf(bounds, delta[:1], 0.5) != 0 {
		t.Error("mismatched counts length should read 0")
	}
	if QuantileOf(nil, []int64{3}, 0.5) != 0 {
		t.Error("empty bounds should read 0")
	}
	if QuantileOf(bounds, []int64{1, -2, 1}, 0.5) != 0 {
		t.Error("negative window (histogram reset) should read 0")
	}
}
