package obs

import (
	"strings"
	"testing"
	"time"
)

func TestLabelEncoding(t *testing.T) {
	cases := []struct {
		name string
		kv   []string
		want string
	}{
		{"m", nil, "m"},
		{"m", []string{"source", "cs"}, `m{source="cs"}`},
		{"m", []string{"a", "1", "b", "2"}, `m{a="1",b="2"}`},
		{"m", []string{"odd"}, "m"},
	}
	for _, c := range cases {
		if got := L(c.name, c.kv...); got != c.want {
			t.Errorf("L(%q, %v) = %q, want %q", c.name, c.kv, got, c.want)
		}
	}
}

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d", c.Value())
	}
	if reg.Counter("c") != c {
		t.Error("same name should return the same counter")
	}
	g := reg.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramBuckets("h", []time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // first bucket
	h.Observe(time.Millisecond)       // boundary lands in first bucket (le is inclusive)
	h.Observe(5 * time.Millisecond)   // second bucket
	h.Observe(time.Minute)            // +Inf overflow
	if got := h.BucketCounts(); len(got) != 3 || got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Errorf("BucketCounts = %v", got)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if want := 6*time.Millisecond + 500*time.Microsecond + time.Minute; h.Sum() != want {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
}

func TestRenderFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(L("starts_source_queries_total", "source", "cs")).Inc()
	reg.Gauge("starts_sources_registered").Set(3)
	h := reg.HistogramBuckets(L("starts_search_seconds", "kind", "q"),
		[]time.Duration{time.Millisecond, time.Second})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second)
	out := reg.Render()
	for _, want := range []string{
		"starts_source_queries_total{source=\"cs\"} 1\n",
		"starts_sources_registered 3\n",
		// Cumulative buckets, label sets folded together, suffix before labels.
		"starts_search_seconds_bucket{kind=\"q\",le=\"0.001\"} 1\n",
		"starts_search_seconds_bucket{kind=\"q\",le=\"1\"} 1\n",
		"starts_search_seconds_bucket{kind=\"q\",le=\"+Inf\"} 2\n",
		"starts_search_seconds_sum{kind=\"q\"} 2.0005\n",
		"starts_search_seconds_count{kind=\"q\"} 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestNilRegistryNoOps(t *testing.T) {
	var reg *Registry
	// Nothing here may panic; the returned nil metrics must be inert.
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(time.Second)
	if reg.Counter("c").Value() != 0 || reg.Gauge("g").Value() != 0 || reg.Histogram("h").Count() != 0 {
		t.Error("nil registry metrics should read zero")
	}
	if reg.Render() != "" {
		t.Error("nil registry should render empty")
	}
}
