package obs

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// stubConn is a minimal SourceConn whose Query returns docs or an error.
type stubConn struct {
	id   string
	docs int
	err  error
}

func (s *stubConn) SourceID() string { return s.id }

func (s *stubConn) Metadata(context.Context) (*meta.SourceMeta, error) {
	return &meta.SourceMeta{SourceID: s.id}, s.err
}

func (s *stubConn) Summary(context.Context) (*meta.ContentSummary, error) {
	return &meta.ContentSummary{}, s.err
}

func (s *stubConn) Sample(context.Context) ([]*source.SampleEntry, error) {
	return nil, s.err
}

func (s *stubConn) Query(context.Context, *query.Query) (*result.Results, error) {
	if s.err != nil {
		return nil, s.err
	}
	return &result.Results{Documents: make([]*result.Document, s.docs)}, nil
}

func TestWrapConnRecordsMetricsAndSpans(t *testing.T) {
	reg := NewRegistry()
	c := WrapConn(&stubConn{id: "cs", docs: 3}, reg)
	if c.SourceID() != "cs" {
		t.Errorf("SourceID = %q", c.SourceID())
	}
	tr := NewTrace("q")
	sp := tr.StartSpan("query cs")
	ctx := WithSpan(context.Background(), sp)
	if _, err := c.Query(ctx, query.New()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Metadata(ctx); err != nil {
		t.Fatal(err)
	}
	sp.End(nil)

	if got := reg.Counter(L("starts_conn_calls_total", "source", "cs", "op", "query")).Value(); got != 1 {
		t.Errorf("query calls = %d", got)
	}
	if got := reg.Counter(L("starts_conn_docs_total", "source", "cs")).Value(); got != 3 {
		t.Errorf("docs = %d", got)
	}
	if got := reg.Histogram(L("starts_conn_seconds", "source", "cs", "op", "metadata")).Count(); got != 1 {
		t.Errorf("metadata observations = %d", got)
	}
	ti := tr.Snapshot()
	if hit := ti.Find("conn.query"); hit == nil || hit.Source != "cs" {
		t.Errorf("conn.query span = %+v", hit)
	}
	if hit := ti.Find("conn.metadata"); hit == nil {
		t.Error("conn.metadata span missing")
	}
}

func TestWrapConnCountsErrors(t *testing.T) {
	reg := NewRegistry()
	boom := errors.New("boom")
	c := WrapConn(&stubConn{id: "bad", err: boom}, reg)
	// Bare context: metrics must still record without a span.
	if _, err := c.Query(context.Background(), query.New()); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := reg.Counter(L("starts_conn_errors_total", "source", "bad", "op", "query")).Value(); got != 1 {
		t.Errorf("errors = %d", got)
	}
	if got := reg.Counter(L("starts_conn_docs_total", "source", "bad")).Value(); got != 0 {
		t.Errorf("docs after error = %d", got)
	}
}

func TestWrapConnNilRegistry(t *testing.T) {
	c := WrapConn(&stubConn{id: "cs", docs: 1}, nil)
	if _, err := c.Query(context.Background(), query.New()); err != nil {
		t.Fatal(err)
	}
}

func TestHandlers(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("starts_searches_total").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "starts_searches_total 1") {
		t.Errorf("/metrics body:\n%s", rec.Body.String())
	}

	ring := NewTraceRing(4)
	rec = httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/last-traces", nil))
	if !strings.Contains(rec.Body.String(), "no traces recorded yet") {
		t.Errorf("empty ring body:\n%s", rec.Body.String())
	}
	tr := NewTrace("query cs")
	tr.StartSpan("decode").End(nil)
	tr.Finish()
	ring.Add(tr)
	rec = httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/last-traces", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `trace "query cs"`) || !strings.Contains(body, "decode") {
		t.Errorf("ring body:\n%s", body)
	}
}
