package obs

import "context"

type traceKey struct{}
type spanKey struct{}
type metricsKey struct{}

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil (whose methods no-op).
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// WithSpan marks s as the context's current span, so instrumentation
// deeper in the call tree (retry wrappers, instrumented conns) can hang
// children and annotations off the span its caller opened.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's current span, or nil (whose methods
// no-op).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Annotate adds a key=value annotation to the context's current span, if
// any.
func Annotate(ctx context.Context, key, value string) {
	SpanFrom(ctx).Annotate(key, value)
}

// WithMetrics attaches a registry to the context, so wrappers that have
// no configuration channel of their own (the retry Conn deep inside a
// fan-out) record into whatever registry the pipeline runs under.
func WithMetrics(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, metricsKey{}, r)
}

// MetricsFrom returns the context's registry, or nil (whose methods
// no-op).
func MetricsFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(metricsKey{}).(*Registry)
	return r
}
