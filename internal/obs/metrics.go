package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a dependency-free metrics registry: named counters, gauges
// and fixed-bucket latency histograms, rendered in a Prometheus-flavored
// text format. Metrics are created on first use and live for the
// registry's lifetime. All methods are safe for concurrent use and safe
// on a nil *Registry (they return nil metrics, whose methods no-op), so
// instrumented code never checks whether metrics are enabled.
//
// Label sets are encoded into the metric name with L:
//
//	reg.Counter(obs.L("starts_source_queries_total", "source", id)).Inc()
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// L encodes a label set into a metric name: L("m", "k", "v") is
// `m{k="v"}`. Keys and values are taken as given; pairs must come in
// twos (a trailing odd key is dropped).
func L(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter counts monotonically. A nil *Counter no-ops.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Value reads the count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge holds a settable value. A nil *Gauge no-ops.
type Gauge struct {
	n atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.n.Store(n)
}

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.n.Add(n)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}

// DefBuckets are the default latency histogram bucket upper bounds,
// spanning sub-millisecond local sources to multi-second remote ones.
var DefBuckets = []time.Duration{
	100 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
	25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
	250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. A nil *Histogram
// no-ops.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds; an implicit +Inf follows
	counts []atomic.Int64  // len(bounds)+1
	sum    atomic.Int64    // nanoseconds
	total  atomic.Int64
}

func newHistogram(bounds []time.Duration) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.total.Add(1)
}

// Count is the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum is the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Bounds returns the histogram's bucket upper bounds (ascending; an
// implicit +Inf bucket follows the last).
func (h *Histogram) Bounds() []time.Duration {
	if h == nil {
		return nil
	}
	return append([]time.Duration(nil), h.bounds...)
}

// Quantile estimates the q-th quantile (q in [0, 1]) of the recorded
// durations by linear interpolation within the target bucket, the same
// estimate Prometheus's histogram_quantile computes. It returns 0 with
// no observations; observations in the +Inf overflow bucket clamp to the
// highest finite bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	return QuantileOf(h.bounds, h.BucketCounts(), q)
}

// QuantileOf is the bucket-interpolation quantile estimate over an
// explicit (bounds, per-bucket counts) pair — counts has len(bounds)+1
// entries, the last being the +Inf overflow bucket. Exposed so callers
// holding windowed bucket deltas (counts between two snapshots) can
// estimate quantiles of just that window, which is what the adaptive
// controller ticks on.
func QuantileOf(bounds []time.Duration, counts []int64, q float64) time.Duration {
	if len(bounds) == 0 || len(counts) != len(bounds)+1 {
		return 0
	}
	var total int64
	for _, c := range counts {
		if c < 0 {
			return 0
		}
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the (fractional) number of observations at or below the
	// quantile point; walk the buckets cumulatively to the one holding it.
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(bounds) {
			// Overflow bucket: no finite upper edge to interpolate toward.
			return bounds[len(bounds)-1]
		}
		var lo time.Duration
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := (rank - float64(cum)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return bounds[len(bounds)-1]
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default buckets,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, DefBuckets)
}

// HistogramBuckets is Histogram with explicit bucket bounds; the bounds
// of the first call for a name win.
func (r *Registry) HistogramBuckets(name string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Render writes every metric in a Prometheus-flavored text format,
// sorted by name: counters and gauges as `name value`, histograms as
// cumulative `name_bucket{le="s"}` lines plus `name_sum` (seconds) and
// `name_count`.
func (r *Registry) Render() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	counts := make(map[string]*Counter, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var lines []string
	for name, c := range counts {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, g.Value()))
	}
	for name, h := range hists {
		cum := int64(0)
		bucketCounts := h.BucketCounts()
		for i, bound := range h.bounds {
			cum += bucketCounts[i]
			lines = append(lines, fmt.Sprintf("%s %d",
				withLabel(suffixName(name, "_bucket"), "le", formatSeconds(bound)), cum))
		}
		cum += bucketCounts[len(bucketCounts)-1]
		lines = append(lines, fmt.Sprintf("%s %d",
			withLabel(suffixName(name, "_bucket"), "le", "+Inf"), cum))
		lines = append(lines, fmt.Sprintf("%s %s", suffixName(name, "_sum"), formatSeconds(h.Sum())))
		lines = append(lines, fmt.Sprintf("%s %d", suffixName(name, "_count"), h.Count()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// withLabel adds one more label to a metric name, folding it into an
// existing label set if the name carries one.
func withLabel(name, key, value string) string {
	if strings.HasSuffix(name, "}") {
		return fmt.Sprintf("%s,%s=%q}", name[:len(name)-1], key, value)
	}
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}

// suffixName appends a suffix to a metric name, keeping any label set
// last: suffixName(`m{a="b"}`, "_sum") is `m_sum{a="b"}`.
func suffixName(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// formatSeconds renders a duration as decimal seconds, Prometheus-style.
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}
