package obs

// Canonical metric names of the query-result cache (internal/qcache).
// Every starts_* metric family is named where it is emitted; the qcache
// family lives here because three layers emit into it — core's cached
// Search path, the caching Conn middleware, and the server's admission
// gate — and they must agree on names so a shared Registry renders one
// coherent /metrics view.
//
// The wider naming convention, for reference (all names are
// Prometheus-flavored, labels encoded with L):
//
//	starts_searches_total, starts_search_seconds        core.Search
//	starts_source_queries_total{source}, ...            core fan-out
//	starts_harvest_cache_{hits,misses}_total            core harvest cache
//	starts_conn_{calls,errors}_total{source,op}, ...    obs.WrapConn
//	starts_retries_total, starts_breaker_transitions_…  resilient
//	starts_server_{requests,errors}_total{route}, ...   server routes
//	starts_qcache_*                                     this file
const (
	// MQCacheHits counts fresh cache hits (served without any fan-out).
	MQCacheHits = "starts_qcache_hits_total"
	// MQCacheMisses counts misses that ran the fill as flight leader.
	MQCacheMisses = "starts_qcache_misses_total"
	// MQCacheStale counts expired entries served stale while a
	// background refresh ran (stale-while-revalidate).
	MQCacheStale = "starts_qcache_stale_total"
	// MQCacheCoalesced counts callers that joined an in-flight fill for
	// the same key instead of fanning out themselves.
	MQCacheCoalesced = "starts_qcache_coalesced_total"
	// MQCacheShed counts admissions rejected by the load-shedding gate
	// after waiting out the queue timeout.
	MQCacheShed = "starts_qcache_shed_total"
	// MQCacheEvictions counts LRU evictions.
	MQCacheEvictions = "starts_qcache_evictions_total"
	// MQCacheRefreshErrors counts failed stale-while-revalidate
	// refreshes (the stale entry stays in service).
	MQCacheRefreshErrors = "starts_qcache_refresh_errors_total"
	// MQCacheEntries gauges the live entry count across all shards.
	MQCacheEntries = "starts_qcache_entries"
	// MQCacheInflight gauges admissions currently holding a gate slot.
	MQCacheInflight = "starts_qcache_inflight"
	// MQCacheHitSeconds is the hit-path latency histogram: time to serve
	// an answer from cache (fresh or stale), fan-out excluded.
	MQCacheHitSeconds = "starts_qcache_hit_seconds"
	// MQCacheEntryTTLSeconds is the histogram of explicit per-entry
	// lifetimes derived from source freshness metadata (after clamping to
	// [TTLFloor, TTLCeiling]); entries on the Config.TTL fallback are not
	// observed.
	MQCacheEntryTTLSeconds = "starts_qcache_entry_ttl_seconds"
	// MQCacheWarmReplayed counts workload entries replayed successfully
	// during a warm start.
	MQCacheWarmReplayed = "starts_qcache_warm_replayed_total"
	// MQCacheWarmSkipped counts workload entries skipped during a warm
	// start (duplicates, or already fresh in the cache).
	MQCacheWarmSkipped = "starts_qcache_warm_skipped_total"
	// MQCacheWarmErrors counts workload entries whose replay failed
	// (query re-parse or search error).
	MQCacheWarmErrors = "starts_qcache_warm_errors_total"
	// MQCacheWarmSeconds is the wall time of whole warm-start replays.
	MQCacheWarmSeconds = "starts_qcache_warm_seconds"
)

// Canonical metric names of the per-source dispatch layer
// (internal/dispatch). Like the qcache family, they live here because
// several layers observe them — core's fan-out, the dispatching Conn
// middleware, and the debug endpoints — and must agree on names. All
// carry a source label (encoded with L).
const (
	// MDispatchSubmitted counts accepted submissions, leaders plus
	// joiners; MDispatchSubmitted - MDispatchBatched is the number of
	// wire calls attempted.
	MDispatchSubmitted = "starts_dispatch_submitted_total"
	// MDispatchBatched counts submissions that joined an in-flight batch
	// for the same key instead of enqueueing their own wire call.
	MDispatchBatched = "starts_dispatch_batched_total"
	// MDispatchQueueFull counts submissions shed with ErrQueueFull.
	MDispatchQueueFull = "starts_dispatch_queue_full_total"
	// MDispatchRefused counts batches fast-drained with ErrRefused
	// because the source's Refuse hook (circuit breaker) reported it
	// unavailable.
	MDispatchRefused = "starts_dispatch_refused_total"
	// MDispatchCancelled counts batches abandoned by every waiter before
	// a worker picked them up.
	MDispatchCancelled = "starts_dispatch_cancelled_total"
	// MDispatchQueueDepth gauges batches currently waiting for a worker.
	MDispatchQueueDepth = "starts_dispatch_queue_depth"
	// MDispatchInflight gauges tasks currently running on the source's
	// workers; it never exceeds the source's configured concurrency.
	MDispatchInflight = "starts_dispatch_inflight"
	// MDispatchWaitSeconds is the histogram of time batches spent queued
	// before a worker picked them up.
	MDispatchWaitSeconds = "starts_dispatch_wait_seconds"
	// MDispatchRunSeconds is the histogram of task (wire call) durations.
	MDispatchRunSeconds = "starts_dispatch_run_seconds"
	// MDispatchDoomed counts submissions refused with ErrDeadline because
	// the caller's remaining context budget could not cover the source's
	// observed typical service time (deadline-aware admission).
	MDispatchDoomed = "starts_dispatch_doomed_total"
	// MDispatchConcurrencyLimit gauges the source's live worker bound —
	// static unless an adaptive controller resizes it.
	MDispatchConcurrencyLimit = "starts_dispatch_concurrency_limit"
	// MDispatchQueueLimit gauges the source's live queue-depth bound.
	MDispatchQueueLimit = "starts_dispatch_queue_limit"
	// MDispatchWireCalls counts wire calls actually issued — single-task
	// runs and multiplexed group runs alike.
	MDispatchWireCalls = "starts_dispatch_wire_calls_total"
	// MDispatchWireItems counts the queue items those wire calls carried;
	// MDispatchWireItems / MDispatchWireCalls is the wire amortization
	// factor, and 1 - calls/items the batched-wire ratio.
	MDispatchWireItems = "starts_dispatch_wire_items_total"
	// MDispatchWireSize is the histogram of items per dispatch wire call
	// (bucket bounds are counts, not durations).
	MDispatchWireSize = "starts_dispatch_wire_batch_size"
)

// Canonical metric names of the distributed peer cache tier
// (internal/peer). They live here with the qcache family they extend:
// the peer store, the server's /peer/cache endpoints and the CLIs'
// /debug/peers views all emit into them and must agree on names. All
// carry a peer label (the peer's base URL, encoded with L) unless noted.
const (
	// MPeerRemoteHits counts Gets served by a remote owner (the entry
	// crossed the wire instead of re-running the fan-out).
	MPeerRemoteHits = "starts_peer_remote_hits_total"
	// MPeerRemoteMisses counts Gets whose remote owner answered a clean
	// miss (404).
	MPeerRemoteMisses = "starts_peer_remote_misses_total"
	// MPeerRemotePuts counts Puts stored on a remote owner.
	MPeerRemotePuts = "starts_peer_remote_puts_total"
	// MPeerErrors counts failed peer operations, typed by op
	// (get/put/evict/len) and kind (transport/status/decode/encode/
	// breaker-open); every one degrades to the local store.
	MPeerErrors = "starts_peer_errors_total"
	// MPeerFallbacks counts operations that fell through to the local
	// store because their remote owner failed or its circuit was open.
	MPeerFallbacks = "starts_peer_local_fallbacks_total"
	// MPeerRTTSeconds is the per-peer round-trip histogram of remote
	// cache operations, dial to fully-read body.
	MPeerRTTSeconds = "starts_peer_rtt_seconds"
	// MPeerRingShare gauges each ring member's owned fraction of the
	// hash space, in permille (≈ 1000/N with enough virtual nodes).
	MPeerRingShare = "starts_peer_ring_share_permille"
	// MPeerRingPeers gauges the ring size, self included (no label).
	MPeerRingPeers = "starts_peer_ring_peers"
)

// MWireBatchSize is obs.WrapConn's histogram of QueryBatch sizes —
// items per batch call as seen at the conn middleware, so wire-level
// multiplexing stays observable wherever the observe layer sits in the
// chain (bucket bounds are counts, not durations).
const MWireBatchSize = "starts_wire_batch_size"

// Canonical metric names of the streaming answer path
// (core.SearchStream feeding an incremental merger): how often searches
// stream, how quickly the first stable document reaches the sink, and
// how much of each answer the stability bound released early. None
// carry labels.
const (
	// MStreamSearches counts searches that attached a stream sink.
	MStreamSearches = "starts_stream_searches_total"
	// MStreamFirstResultSeconds is the time-to-first-result histogram:
	// search start to the first event carrying documents (cache replays
	// included — an instant replay is a genuinely instant first result).
	MStreamFirstResultSeconds = "starts_stream_first_result_seconds"
	// MStreamFinalSeconds is the time-to-final histogram: search start
	// to the terminal event with the complete merged answer.
	MStreamFinalSeconds = "starts_stream_final_seconds"
	// MStreamEarlyDocs counts documents emitted before the terminal
	// event — the stability bound's yield. Compare against
	// starts_merge_docs_total for the early-emission fraction.
	MStreamEarlyDocs = "starts_stream_early_docs_total"
	// MStreamReplays counts streams served whole from the query cache
	// (hit, stale or coalesced) as one terminal event.
	MStreamReplays = "starts_stream_replays_total"
	// MStreamSinkErrors counts sinks that returned an error and were
	// cut off; their searches still completed.
	MStreamSinkErrors = "starts_stream_sink_errors_total"
)

// Canonical metric names of the adaptive admission controller
// (internal/adaptive), which closes the loop from the dispatch and
// breaker signals above back onto per-source dispatch limits. All carry
// a source label except MAdaptiveTicks.
const (
	// MAdaptiveTicks counts controller evaluation rounds.
	MAdaptiveTicks = "starts_adaptive_ticks_total"
	// MAdaptiveIncreases counts additive-increase decisions (healthy
	// window, limits grew).
	MAdaptiveIncreases = "starts_adaptive_increases_total"
	// MAdaptiveDecreases counts multiplicative-decrease decisions
	// (latency SLO breach or broken breaker, limits shrank).
	MAdaptiveDecreases = "starts_adaptive_decreases_total"
	// MAdaptiveConcurrency gauges the controller's current concurrency
	// limit per source (mirrors MDispatchConcurrencyLimit once applied).
	MAdaptiveConcurrency = "starts_adaptive_concurrency"
	// MAdaptiveQueueDepth gauges the controller's current queue-depth
	// limit per source.
	MAdaptiveQueueDepth = "starts_adaptive_queue_depth"
	// MAdaptiveWindowSeconds gauges the last window's observed latency
	// quantile per source, in nanoseconds (0 when the window was idle).
	MAdaptiveWindowSeconds = "starts_adaptive_window_latency_ns"
)
