package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/query"
	"starts/internal/soif"
	"starts/internal/source"
)

// startTestServer builds a two-source resource (with one shared document)
// and serves it from an httptest server.
func startTestServer(t *testing.T) (*httptest.Server, *source.Resource) {
	t.Helper()
	res := source.NewResource()
	mk := func(id string, cfg engine.Config, docs []*index.Document) {
		eng, err := engine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := source.New(id, eng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddAll(docs); err != nil {
			t.Fatal(err)
		}
		if err := res.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	shared := &index.Document{
		Linkage: "http://shared/survey", Title: "Metasearch survey",
		Body: "Metasearchers merge distributed query results.",
		Date: time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	mk("Source-1", engine.NewVectorConfig(), []*index.Document{
		{Linkage: "http://a/1", Title: "Distributed databases", Body: "Distributed database systems and query processing.", Date: time.Date(1995, 1, 1, 0, 0, 0, 0, time.UTC)},
		shared,
	})
	mk("Source-2", engine.NewBooleanConfig(), []*index.Document{
		{Linkage: "http://b/1", Title: "Gardening", Body: "Compost and distributed irrigation.", Date: time.Date(1994, 1, 1, 0, 0, 0, 0, time.UTC)},
		{Linkage: "http://shared/survey", Title: "Metasearch survey", Body: "Metasearchers merge distributed query results.", Date: time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC)},
	})

	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Config.Handler = New(res, ts.URL)
	t.Cleanup(ts.Close)
	return ts, res
}

// TestEndToEndHTTP is experiment X6's correctness half: discover the
// resource, harvest metadata and summaries, query a source, all over HTTP.
func TestEndToEndHTTP(t *testing.T) {
	ts, _ := startTestServer(t)
	ctx := context.Background()
	c := client.NewClient(ts.Client())

	conns, err := c.Discover(ctx, ts.URL+"/resource")
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(conns) != 2 {
		t.Fatalf("conns = %d", len(conns))
	}

	m, err := conns[0].Metadata(ctx)
	if err != nil {
		t.Fatalf("Metadata: %v", err)
	}
	if m.SourceID != "Source-1" || !strings.HasPrefix(m.Linkage, ts.URL) {
		t.Errorf("metadata = %q %q", m.SourceID, m.Linkage)
	}

	sum, err := conns[0].Summary(ctx)
	if err != nil {
		t.Fatalf("Summary: %v", err)
	}
	if sum.NumDocs != 2 {
		t.Errorf("summary NumDocs = %d", sum.NumDocs)
	}

	samples, err := conns[0].Sample(ctx)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if len(samples) == 0 {
		t.Error("no sample entries")
	}

	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list((any "distributed"))`)
	res, err := conns[0].Query(ctx, q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Documents) != 2 {
		t.Errorf("results = %d", len(res.Documents))
	}
	if res.Sources[0] != "Source-1" {
		t.Errorf("sources = %v", res.Sources)
	}
}

func TestMultiSourceQueryOverHTTP(t *testing.T) {
	ts, _ := startTestServer(t)
	ctx := context.Background()
	c := client.NewClient(ts.Client())
	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list((any "metasearchers"))`)
	q.Filter, _ = query.ParseFilter(`(any "metasearchers")`)
	q.Sources = []string{"Source-2"}
	res, err := c.Query(ctx, ts.URL+"/sources/Source-1/query", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sources) != 2 {
		t.Errorf("sources = %v", res.Sources)
	}
	// The shared document appears once, attributed to both sources.
	count := 0
	for _, d := range res.Documents {
		if d.Linkage() == "http://shared/survey" {
			count++
			if len(d.Sources) != 2 {
				t.Errorf("shared doc sources = %v", d.Sources)
			}
		}
	}
	if count != 1 {
		t.Errorf("shared doc appears %d times", count)
	}
}

func TestServerErrors(t *testing.T) {
	ts, _ := startTestServer(t)
	get := func(path string) int {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/sources/NoSuch/metadata"); got != http.StatusNotFound {
		t.Errorf("unknown source metadata -> %d", got)
	}
	if got := get("/nothing"); got != http.StatusNotFound {
		t.Errorf("unknown path -> %d", got)
	}
	post := func(path, body string) int {
		resp, err := ts.Client().Post(ts.URL+path, ContentType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("/sources/Source-1/query", "not soif"); got != http.StatusBadRequest {
		t.Errorf("malformed SOIF -> %d", got)
	}
	if got := post("/sources/Source-1/query", "@SQuery{\n}\n"); got != http.StatusBadRequest {
		t.Errorf("empty query -> %d", got)
	}
	// Query naming an unknown extra source.
	q := query.New()
	q.Filter, _ = query.ParseFilter(`(any "x")`)
	q.Sources = []string{"NoSuch"}
	body, _ := q.Marshal()
	if got := post("/sources/Source-1/query", string(body)); got != http.StatusBadRequest {
		t.Errorf("unknown extra source -> %d", got)
	}
	// GET on the query endpoint is not allowed.
	if got := get("/sources/Source-1/query"); got != http.StatusMethodNotAllowed {
		t.Errorf("GET query -> %d", got)
	}
}

func TestClientErrorPaths(t *testing.T) {
	ts, _ := startTestServer(t)
	ctx := context.Background()
	c := client.NewClient(nil) // default client also works against httptest
	if _, err := c.Resource(ctx, ts.URL+"/nothing"); err == nil {
		t.Error("404 resource accepted")
	}
	if _, err := c.Metadata(ctx, ts.URL+"/resource"); err == nil {
		t.Error("resource object accepted as metadata")
	}
	if _, err := c.Summary(ctx, ts.URL+"/resource"); err == nil {
		t.Error("resource object accepted as summary")
	}
	if _, err := c.Sample(ctx, ts.URL+"/resource"); err == nil {
		t.Error("resource object accepted as sample")
	}
	// Context cancellation propagates.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.Resource(cancelled, ts.URL+"/resource"); err == nil {
		t.Error("cancelled context succeeded")
	}
}

func TestLocalConnParity(t *testing.T) {
	// The same interactions work against an in-process source.
	_, res := startTestServer(t)
	s, _ := res.Source("Source-1")
	conn := client.NewLocalConn(s, res)
	ctx := context.Background()
	if conn.SourceID() != "Source-1" {
		t.Errorf("id = %s", conn.SourceID())
	}
	if _, err := conn.Metadata(ctx); err != nil {
		t.Errorf("Metadata: %v", err)
	}
	if _, err := conn.Summary(ctx); err != nil {
		t.Errorf("Summary: %v", err)
	}
	if _, err := conn.Sample(ctx); err != nil {
		t.Errorf("Sample: %v", err)
	}
	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list((any "distributed"))`)
	q.Sources = []string{"Source-2"}
	r, err := conn.Query(ctx, q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(r.Sources) != 2 {
		t.Errorf("multi-source local query sources = %v", r.Sources)
	}
}

// TestJSONContentNegotiation: the paper leaves the encoding open; the
// server speaks JSON when asked via Accept, and accepts JSON queries.
func TestJSONContentNegotiation(t *testing.T) {
	ts, _ := startTestServer(t)
	// GET with Accept: application/json.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/sources/Source-1/metadata", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", JSONContentType)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != JSONContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	objs, err := soif.UnmarshalAllJSON(body)
	if err != nil || len(objs) != 1 || objs[0].Type != "SMetaAttributes" {
		t.Fatalf("JSON metadata = %v, %v", objs, err)
	}
	if v, _ := objs[0].Get("SourceID"); v != "Source-1" {
		t.Errorf("SourceID = %q", v)
	}

	// POST a JSON-encoded query and receive JSON results.
	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list((any "distributed"))`)
	qo, err := q.ToSOIF()
	if err != nil {
		t.Fatal(err)
	}
	jq, err := qo.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	req2, err := http.NewRequest(http.MethodPost, ts.URL+"/sources/Source-1/query", strings.NewReader(string(jq)))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Content-Type", JSONContentType)
	req2.Header.Set("Accept", JSONContentType)
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	robjs, err := soif.UnmarshalAllJSON(body2)
	if err != nil || len(robjs) < 2 || robjs[0].Type != "SQResults" {
		t.Fatalf("JSON results = %d objs, %v", len(robjs), err)
	}

	// Default (no Accept) stays SOIF.
	resp3, err := ts.Client().Get(ts.URL + "/resource")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if ct := resp3.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("default Content-Type = %q", ct)
	}
}

// TestGzipSummaries: large payloads are gzip-compressed when accepted;
// the standard client decompresses transparently, so the STARTS client
// needs no changes.
func TestGzipSummaries(t *testing.T) {
	ts, _ := startTestServer(t)
	// Raw request with explicit gzip accept against a large payload (the
	// sample-results stream): compressed on the wire.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/sources/Source-1/sample", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := ts.Client().Transport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q", ce)
	}
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) == 0 || strings.HasPrefix(string(raw), "@SQuery") {
		t.Error("payload does not look compressed")
	}
	// The STARTS client still parses summaries end to end (transparent
	// decompression in net/http).
	c := client.NewClient(ts.Client())
	sum, err := c.Summary(context.Background(), ts.URL+"/sources/Source-1/summary")
	if err != nil || sum.NumDocs != 2 {
		t.Fatalf("Summary through gzip = %v, %v", sum, err)
	}
	// Small payloads (the resource object) stay uncompressed.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/resource", nil)
	req2.Header.Set("Accept-Encoding", "gzip")
	resp2, err := ts.Client().Transport.RoundTrip(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ce := resp2.Header.Get("Content-Encoding"); ce == "gzip" {
		t.Error("tiny resource object needlessly compressed")
	}
}
