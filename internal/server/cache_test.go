package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/obs"
	"starts/internal/query"
	"starts/internal/source"
)

func queryBody(t *testing.T) string {
	t.Helper()
	q := query.New()
	var err error
	if q.Ranking, err = query.ParseRanking(`list((any "distributed"))`); err != nil {
		t.Fatal(err)
	}
	body, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestCacheValidators: /metadata, /summary and /query responses carry a
// content-hash ETag and a Cache-Control lifetime, and a matching
// If-None-Match revalidation gets a bodyless 304.
func TestCacheValidators(t *testing.T) {
	ts, res := startTestServer(t)
	src, _ := res.Source("Source-1")
	src.Expires = time.Now().Add(2 * time.Hour)

	fetch := func(method, path, body, inm string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if body != "" {
			req.Header.Set("Content-Type", ContentType)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	routes := []struct {
		name, method, path, body string
	}{
		{"metadata", http.MethodGet, "/sources/Source-1/metadata", ""},
		{"summary", http.MethodGet, "/sources/Source-1/summary", ""},
		{"query", http.MethodPost, "/sources/Source-1/query", queryBody(t)},
	}
	for _, rt := range routes {
		t.Run(rt.name, func(t *testing.T) {
			first := fetch(rt.method, rt.path, rt.body, "")
			if first.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", first.StatusCode)
			}
			etag := first.Header.Get("ETag")
			if etag == "" || !strings.HasPrefix(etag, `"`) {
				t.Fatalf("ETag = %q, want a quoted validator", etag)
			}
			cc := first.Header.Get("Cache-Control")
			if !strings.HasPrefix(cc, "max-age=") {
				t.Errorf("Cache-Control = %q, want max-age from DateExpires", cc)
			}
			payload, _ := io.ReadAll(first.Body)
			if len(payload) == 0 {
				t.Fatal("empty 200 body")
			}

			// Same request, matching validator: 304, no body.
			second := fetch(rt.method, rt.path, rt.body, etag)
			if second.StatusCode != http.StatusNotModified {
				t.Fatalf("If-None-Match %s -> %d, want 304", etag, second.StatusCode)
			}
			if second.Header.Get("ETag") != etag {
				t.Errorf("304 ETag = %q, want %q", second.Header.Get("ETag"), etag)
			}
			if b, _ := io.ReadAll(second.Body); len(b) != 0 {
				t.Errorf("304 carried a %d-byte body", len(b))
			}

			// A stale validator re-delivers the full payload.
			third := fetch(rt.method, rt.path, rt.body, `"deadbeef"`)
			if third.StatusCode != http.StatusOK {
				t.Errorf("stale If-None-Match -> %d, want 200", third.StatusCode)
			}
		})
	}
}

// TestCacheControlWithoutExpiry: a source that never set DateExpires
// serves with no-cache (revalidate every time) rather than a made-up
// lifetime.
func TestCacheControlWithoutExpiry(t *testing.T) {
	ts, _ := startTestServer(t)
	resp, err := ts.Client().Get(ts.URL + "/sources/Source-1/metadata")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("Cache-Control = %q without DateExpires, want no-cache", cc)
	}
	if resp.Header.Get("ETag") == "" {
		t.Errorf("no ETag on metadata response")
	}
}

// TestETagVariesWithEncoding: the SOIF and JSON representations of one
// resource must not share a validator (caches also get Vary: Accept).
func TestETagVariesWithEncoding(t *testing.T) {
	ts, _ := startTestServer(t)
	get := func(accept string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/sources/Source-1/metadata", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	soifTag := get("").Header.Get("ETag")
	jsonResp := get(JSONContentType)
	if jsonResp.Header.Get("ETag") == soifTag {
		t.Errorf("SOIF and JSON representations share ETag %q", soifTag)
	}
	if vary := jsonResp.Header.Get("Vary"); !strings.Contains(vary, "Accept") {
		t.Errorf("Vary = %q, want Accept", vary)
	}
}

// TestQuerySheds: with one query slot held by a slow request, the next
// query is rejected 503 within the queue timeout, with a Retry-After
// hint and a starts_qcache_shed_total count.
func TestQuerySheds(t *testing.T) {
	const queueTimeout = 50 * time.Millisecond
	res := source.NewResource()
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := source.New("S", eng)
	if err != nil {
		t.Fatal(err)
	}
	err = src.Add(&index.Document{Linkage: "http://s/1", Title: "doc", Body: "distributed systems"})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Add(src); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.NotFoundHandler())
	srv := New(res, ts.URL, WithMaxInflight(1, queueTimeout))
	ts.Config.Handler = srv
	t.Cleanup(ts.Close)

	// Hold the only slot: the handler admits the request, then blocks
	// reading a body we never finish sending.
	pr, pw := io.Pipe()
	slowDone := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/sources/S/query", pr)
		if err != nil {
			slowDone <- err
			return
		}
		req.Header.Set("Content-Type", ContentType)
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		slowDone <- err
	}()
	inflight := srv.Metrics().Gauge(obs.MQCacheInflight)
	deadline := time.Now().Add(5 * time.Second)
	for inflight.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if inflight.Value() == 0 {
		t.Fatal("slow query never acquired the gate")
	}

	// The next query must be shed promptly.
	start := time.Now()
	resp, err := ts.Client().Post(ts.URL+"/sources/S/query", ContentType,
		strings.NewReader(queryBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if time.Since(start) > 10*queueTimeout {
		t.Errorf("shed took %v, want within ~%v", time.Since(start), queueTimeout)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded query -> %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 without Retry-After")
	}
	if got := srv.Metrics().Counter(obs.MQCacheShed).Value(); got != 1 {
		t.Errorf("%s = %v, want 1", obs.MQCacheShed, got)
	}

	// Finish the slow request with a valid query; it should succeed.
	if _, err := pw.Write([]byte(queryBody(t))); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-slowDone; err != nil {
		t.Fatalf("slow query failed: %v", err)
	}
}

// TestCacheControlHeuristicFromDateChanged: a source declaring only
// DateChanged gets a heuristic max-age — a tenth of the age since the
// change, the same qcache.FreshFor rule the metasearcher uses for its
// per-entry TTLs — instead of no-cache.
func TestCacheControlHeuristicFromDateChanged(t *testing.T) {
	ts, res := startTestServer(t)
	src, _ := res.Source("Source-1")
	src.Changed = time.Now().Add(-100 * time.Minute) // heuristic: ~10 minutes

	resp, err := ts.Client().Get(ts.URL + "/sources/Source-1/metadata")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	cc := resp.Header.Get("Cache-Control")
	if !strings.HasPrefix(cc, "max-age=") {
		t.Fatalf("Cache-Control = %q with DateChanged set, want a heuristic max-age", cc)
	}
	secs, err := strconv.Atoi(strings.TrimPrefix(cc, "max-age="))
	if err != nil {
		t.Fatal(err)
	}
	want := int((100 * time.Minute / 10).Seconds())
	if secs < want-5 || secs > want+5 {
		t.Errorf("max-age = %ds, want ~%ds (age/10)", secs, want)
	}
}

// TestCacheControlPastExpiry: a source already past its DateExpires must
// serve no-cache, not a negative or zero max-age.
func TestCacheControlPastExpiry(t *testing.T) {
	ts, res := startTestServer(t)
	src, _ := res.Source("Source-1")
	src.Expires = time.Now().Add(-time.Hour)

	resp, err := ts.Client().Get(ts.URL + "/sources/Source-1/metadata")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("Cache-Control = %q past DateExpires, want no-cache", cc)
	}
}
