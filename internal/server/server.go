// Package server exposes a STARTS resource over HTTP. The paper leaves
// transport deliberately unspecified ("what transport to use generated
// some heated debate"); this server delivers the SOIF objects over plain
// HTTP, the transport the examples assume:
//
//	GET  /resource               -> @SResource
//	GET  /sources/{id}/metadata  -> @SMetaAttributes
//	GET  /sources/{id}/summary   -> @SContentSummary
//	GET  /sources/{id}/sample    -> sample-database results stream
//	POST /sources/{id}/query     -> @SQResults stream (body: @SQuery)
//	POST /sources/{id}/query-batch -> @SQBatchItem-framed stream, one
//	     frame per sub-query in completion order (body: @SQuery stream)
//
// All communication is sessionless and the sources are stateless, per
// Section 4.
//
// The server is observable by default: every route is counted and timed
// into an obs.Registry served at GET /metrics, and each query request
// records a decode/search/encode trace into a ring served at
// GET /debug/last-traces.
package server

import (
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"starts/internal/obs"
	"starts/internal/qcache"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/soif"
	"starts/internal/source"
)

// ContentType is the media type used for SOIF payloads.
const ContentType = "application/x-soif"

// JSONContentType is the media type of the alternative JSON encoding,
// served when a request's Accept header prefers it (the paper leaves the
// wire format open; SOIF and JSON are this implementation's two).
const JSONContentType = "application/json"

// maxQueryBytes bounds the accepted query size; STARTS queries are small.
const maxQueryBytes = 1 << 20

// Server serves one resource.
type Server struct {
	res     *source.Resource
	mux     *http.ServeMux
	metrics *obs.Registry
	traces  *obs.TraceRing
	gate    *qcache.Gate

	maxInflight       int
	queueTimeout      time.Duration
	admissionTarget   time.Duration
	admissionInterval time.Duration

	peers PeerCache
}

// PeerCache is the slice of peer.Store the server mounts: the wire
// handler for this node's ring share and the /debug/peers view. It is
// declared structurally (peer.Store satisfies it) so the server package
// does not depend on the peer package.
type PeerCache interface {
	Handler() http.Handler
	DebugHandler() http.Handler
}

// Option configures a Server.
type Option func(*Server)

// WithMetrics records into an externally owned registry instead of a
// private one — share it to merge several components onto one /metrics.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.metrics = reg }
}

// WithTraceCapacity sizes the /debug/last-traces ring (default 32).
func WithTraceCapacity(n int) Option {
	return func(s *Server) { s.traces = obs.NewTraceRing(n) }
}

// WithMaxInflight bounds concurrent query evaluations to n. Excess
// requests wait up to queueTimeout (qcache.DefaultQueueTimeout if zero)
// for a slot and are then shed with a fast 503 + Retry-After instead of
// queueing without bound; sheds count as starts_qcache_shed_total on
// /metrics. n <= 0 leaves queries unbounded.
func WithMaxInflight(n int, queueTimeout time.Duration) Option {
	return func(s *Server) {
		s.maxInflight = n
		s.queueTimeout = queueTimeout
	}
}

// WithAdmissionTarget arms CoDel-style adaptive shedding on the query
// gate (requires WithMaxInflight): once admissions have waited longer
// than target for a full interval (qcache.DefaultAdmissionInterval if
// zero), the gate sheds at entry at an accelerating rate until waits
// fall back under target, so overload turns into cheap early 503s whose
// Retry-After tracks the observed congestion. target <= 0 leaves the
// plain timeout gate.
func WithAdmissionTarget(target, interval time.Duration) Option {
	return func(s *Server) {
		s.admissionTarget = target
		s.admissionInterval = interval
	}
}

// WithPeerCache mounts the distributed cache tier's receiving end on
// this server: the store's local backend served at GET/PUT/DELETE
// /peer/cache/{key} and GET /peer/len (instrumented like every other
// route), plus the ring snapshot at GET /debug/peers. The store should
// name this server's base URL as its Config.Self so the ring share this
// node owns is served from here.
func WithPeerCache(ps PeerCache) Option {
	return func(s *Server) { s.peers = ps }
}

// New returns a server for the resource. baseURL (scheme://host[:port],
// no trailing slash) is stamped into each source's exported metadata so
// that harvested metadata points back at this server.
func New(res *source.Resource, baseURL string, opts ...Option) *Server {
	for _, id := range res.SourceIDs() {
		s, _ := res.Source(id)
		s.SetBaseURL(baseURL + "/sources/" + id)
	}
	srv := &Server{res: res, mux: http.NewServeMux()}
	for _, o := range opts {
		o(srv)
	}
	if srv.metrics == nil {
		srv.metrics = obs.NewRegistry()
	}
	if srv.traces == nil {
		srv.traces = obs.NewTraceRing(32)
	}
	srv.gate = qcache.NewGateConfig(qcache.GateConfig{
		MaxInflight:  srv.maxInflight,
		QueueTimeout: srv.queueTimeout,
		Target:       srv.admissionTarget,
		Interval:     srv.admissionInterval,
		Metrics:      srv.metrics,
	})
	srv.route("GET /resource", "resource", srv.handleResource)
	srv.route("GET /sources/{id}/metadata", "metadata", srv.handleMetadata)
	srv.route("GET /sources/{id}/summary", "summary", srv.handleSummary)
	srv.route("GET /sources/{id}/sample", "sample", srv.handleSample)
	srv.route("POST /sources/{id}/query", "query", srv.handleQuery)
	srv.route("POST /sources/{id}/query-batch", "query-batch", srv.handleQueryBatch)
	srv.mux.Handle("GET /metrics", srv.metrics.Handler())
	srv.mux.Handle("GET /debug/last-traces", srv.traces.Handler())
	if srv.peers != nil {
		ph := srv.peers.Handler()
		srv.route("GET /peer/cache/{key}", "peer-cache", ph.ServeHTTP)
		srv.route("PUT /peer/cache/{key}", "peer-cache", ph.ServeHTTP)
		srv.route("DELETE /peer/cache/{key}", "peer-cache", ph.ServeHTTP)
		srv.route("GET /peer/len", "peer-len", ph.ServeHTTP)
		srv.mux.Handle("GET /debug/peers", srv.peers.DebugHandler())
	}
	return srv
}

// Metrics returns the registry the server records into.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Traces returns the ring behind /debug/last-traces.
func (s *Server) Traces() *obs.TraceRing { return s.traces }

// route registers an instrumented handler: per-route request and error
// counters plus a latency histogram.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.Counter(obs.L("starts_server_requests_total", "route", name)).Inc()
		if sw.status >= 400 {
			s.metrics.Counter(obs.L("starts_server_errors_total", "route", name,
				"code", strconv.Itoa(sw.status))).Inc()
		}
		s.metrics.Histogram(obs.L("starts_server_seconds", "route", name)).
			Observe(time.Since(start))
	})
}

// statusWriter captures the status code for the route instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Flush forwards to the underlying writer when it supports flushing, so
// streaming handlers (the batch query route) can push each frame to the
// client the moment it is written.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) source(w http.ResponseWriter, r *http.Request) (*source.Source, bool) {
	id := r.PathValue("id")
	src, ok := s.res.Source(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown source %q", id), http.StatusNotFound)
		return nil, false
	}
	return src, true
}

// wantsJSON reports whether the request prefers the JSON encoding.
func wantsJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), JSONContentType)
}

// marshalObjects renders SOIF objects in the encoding the request asked
// for: length-framed SOIF text by default, JSON when Accept prefers it.
func marshalObjects(r *http.Request, objs []*soif.Object) (data []byte, contentType string, err error) {
	if wantsJSON(r) {
		data, err = soif.MarshalAllJSON(objs)
		return data, JSONContentType, err
	}
	data, err = soif.MarshalAll(objs)
	return data, ContentType, err
}

// deliver writes an already-marshaled payload, gzipping large responses
// for clients that accept it. Content summaries in particular compress
// extremely well (Go's default HTTP client sends Accept-Encoding: gzip
// and decompresses transparently).
func deliver(w http.ResponseWriter, r *http.Request, contentType string, data []byte) {
	w.Header().Set("Content-Type", contentType)
	if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") && len(data) > 1024 {
		w.Header().Set("Content-Encoding", "gzip")
		gz := gzip.NewWriter(w)
		_, _ = gz.Write(data)
		_ = gz.Close()
		return
	}
	_, _ = w.Write(data)
}

// writeObjects delivers SOIF objects with no cache validators (used by
// routes whose payload has no freshness metadata to derive them from).
func writeObjects(w http.ResponseWriter, r *http.Request, objs []*soif.Object) {
	data, ct, err := marshalObjects(r, objs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	deliver(w, r, ct, data)
}

// writeCacheable delivers SOIF objects with HTTP cache validators: a
// strong content-hash ETag (of the selected encoding, before
// compression) and a Cache-Control max-age derived from the source's
// metadata expiry. A request presenting a matching If-None-Match gets a
// bodyless 304 instead — the validator round-trip costs headers, not a
// re-marshaled summary.
func writeCacheable(w http.ResponseWriter, r *http.Request, objs []*soif.Object, maxAge time.Duration) {
	data, ct, err := marshalObjects(r, objs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sum := sha256.Sum256(data)
	etag := `"` + hex.EncodeToString(sum[:16]) + `"`
	h := w.Header()
	h.Set("ETag", etag)
	// The representation varies with Accept (encoding) and
	// Accept-Encoding (compression); caches must key on both.
	h.Set("Vary", "Accept, Accept-Encoding")
	if secs := int(maxAge.Seconds()); secs > 0 {
		h.Set("Cache-Control", "max-age="+strconv.Itoa(secs))
	} else {
		// No (or expired) freshness metadata: force revalidation, which
		// the ETag makes cheap.
		h.Set("Cache-Control", "no-cache")
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	deliver(w, r, ct, data)
}

// etagMatches reports whether an If-None-Match header value matches etag,
// honoring the wildcard, comma-separated candidate lists, and weak
// validators (RFC 9110's weak comparison suffices for 304s).
func etagMatches(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// maxAge derives a Cache-Control lifetime from the source's freshness
// metadata with the same rule the query cache uses for its per-entry
// TTLs (qcache.FreshFor): the time remaining until DateExpires, or a
// heuristic tenth of the age since DateChanged when only that is set —
// clamped to [0, one day]. Sources declaring neither, or already past
// their expiry, get 0 (serve with revalidation, which the ETag makes
// cheap).
func maxAge(src *source.Source) time.Duration {
	md := src.Metadata()
	d, ok := qcache.FreshFor(md.DateChanged, md.DateExpires, time.Now())
	if !ok || d < 0 {
		return 0
	}
	if d > 24*time.Hour {
		d = 24 * time.Hour
	}
	return d
}

func (s *Server) handleResource(w http.ResponseWriter, r *http.Request) {
	writeObjects(w, r, []*soif.Object{s.res.Description().ToSOIF()})
}

func (s *Server) handleMetadata(w http.ResponseWriter, r *http.Request) {
	src, ok := s.source(w, r)
	if !ok {
		return
	}
	writeCacheable(w, r, []*soif.Object{src.Metadata().ToSOIF()}, maxAge(src))
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	src, ok := s.source(w, r)
	if !ok {
		return
	}
	writeCacheable(w, r, []*soif.Object{src.ContentSummary().ToSOIF()}, maxAge(src))
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	src, ok := s.source(w, r)
	if !ok {
		return
	}
	entries, err := src.SampleResults()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var objs []*soif.Object
	for _, e := range entries {
		qo, err := e.Query.ToSOIF()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		objs = append(objs, qo)
		objs = append(objs, e.Results.ToSOIF()...)
	}
	writeObjects(w, r, objs)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src, ok := s.source(w, r)
	if !ok {
		return
	}
	// Load shedding: queries are the only expensive route, so they pass
	// the admission gate first. A full gate answers 503 within the queue
	// timeout — clients should back off and retry (the retry middleware
	// treats 503 as temporary).
	release, err := s.gate.Acquire(r.Context())
	if err != nil {
		if errors.Is(err, qcache.ErrShed) {
			// Back-off advice derived from the gate's live congestion
			// (smoothed slot wait, doubled while it is in its dropping
			// state) rather than a constant.
			w.Header().Set("Retry-After", strconv.Itoa(s.gate.RetryAfter()))
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer release()
	// Each query request records a trace (decode → search → encode) into
	// the /debug/last-traces ring.
	tr := obs.NewTrace("query " + src.ID())
	defer func() {
		tr.Finish()
		s.traces.Add(tr)
	}()
	dsp := tr.StartSpan("decode")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
	if err != nil {
		dsp.End(err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxQueryBytes {
		dsp.End(fmt.Errorf("query too large"))
		http.Error(w, "query too large", http.StatusRequestEntityTooLarge)
		return
	}
	var obj *soif.Object
	if strings.Contains(r.Header.Get("Content-Type"), JSONContentType) {
		obj = &soif.Object{}
		err = obj.UnmarshalJSON(body)
	} else {
		obj, err = soif.Unmarshal(body)
	}
	if err != nil {
		dsp.End(err)
		http.Error(w, "malformed query object: "+err.Error(), http.StatusBadRequest)
		return
	}
	q, err := query.FromSOIF(obj)
	if err != nil {
		dsp.End(err)
		http.Error(w, "malformed query: "+err.Error(), http.StatusBadRequest)
		return
	}
	dsp.End(nil)
	if streamWanted(r) {
		s.streamQuery(w, r, tr, src, q)
		return
	}
	// Additional same-resource sources route through the resource, which
	// eliminates duplicates; a plain query goes straight to the source.
	qsp := tr.StartSpan("search")
	qsp.SetSource(src.ID())
	rr, err := searchOne(s.res, src, q)
	qsp.End(err)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	qsp.Annotate("docs", strconv.Itoa(len(rr.Documents)))
	s.metrics.Counter(obs.L("starts_server_query_docs_total", "source", src.ID())).
		Add(int64(len(rr.Documents)))
	esp := tr.StartSpan("encode")
	writeCacheable(w, r, rr.ToSOIF(), maxAge(src))
	esp.End(nil)
}

// streamWanted reports whether the request asked for the chunked
// @SQStreamItem response framing. JSON responses stay buffered: the JSON
// rendering is a single document, not a frame stream.
func streamWanted(r *http.Request) bool {
	return r.URL.Query().Get("stream") != "" && !wantsJSON(r)
}

// flushTo pushes buffered response bytes to the client now, when the
// writer supports it.
func flushTo(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// streamQuery answers a ?stream=1 query with @SQStreamItem framing. The
// HTTP preamble is committed and flushed before the search runs, so the
// client sees time-to-first-byte immediately; a leaf source evaluates
// its whole answer in one step, so the body is a single terminal frame
// (documents and all). A search failure after the committed preamble is
// reported as an in-band error frame, which result.Parse and the stream
// decoder both surface as a *result.StreamError.
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request, tr *obs.Trace, src *source.Source, q *query.Query) {
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	flushTo(w)
	enc := soif.NewEncoder(w)
	qsp := tr.StartSpan("search")
	qsp.SetSource(src.ID())
	rr, err := searchOne(s.res, src, q)
	qsp.End(err)
	if err != nil {
		_ = result.EncodeStreamError(enc, err)
		return
	}
	qsp.Annotate("docs", strconv.Itoa(len(rr.Documents)))
	s.metrics.Counter(obs.L("starts_server_query_docs_total", "source", src.ID())).
		Add(int64(len(rr.Documents)))
	esp := tr.StartSpan("encode")
	esp.End(result.EncodeStreamFinal(enc, rr))
	flushTo(w)
}
