// Package server exposes a STARTS resource over HTTP. The paper leaves
// transport deliberately unspecified ("what transport to use generated
// some heated debate"); this server delivers the SOIF objects over plain
// HTTP, the transport the examples assume:
//
//	GET  /resource               -> @SResource
//	GET  /sources/{id}/metadata  -> @SMetaAttributes
//	GET  /sources/{id}/summary   -> @SContentSummary
//	GET  /sources/{id}/sample    -> sample-database results stream
//	POST /sources/{id}/query     -> @SQResults stream (body: @SQuery)
//
// All communication is sessionless and the sources are stateless, per
// Section 4.
package server

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"strings"

	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/soif"
	"starts/internal/source"
)

// ContentType is the media type used for SOIF payloads.
const ContentType = "application/x-soif"

// JSONContentType is the media type of the alternative JSON encoding,
// served when a request's Accept header prefers it (the paper leaves the
// wire format open; SOIF and JSON are this implementation's two).
const JSONContentType = "application/json"

// maxQueryBytes bounds the accepted query size; STARTS queries are small.
const maxQueryBytes = 1 << 20

// Server serves one resource.
type Server struct {
	res *source.Resource
	mux *http.ServeMux
}

// New returns a server for the resource. baseURL (scheme://host[:port],
// no trailing slash) is stamped into each source's exported metadata so
// that harvested metadata points back at this server.
func New(res *source.Resource, baseURL string) *Server {
	for _, id := range res.SourceIDs() {
		s, _ := res.Source(id)
		s.SetBaseURL(baseURL + "/sources/" + id)
	}
	srv := &Server{res: res, mux: http.NewServeMux()}
	srv.mux.HandleFunc("GET /resource", srv.handleResource)
	srv.mux.HandleFunc("GET /sources/{id}/metadata", srv.handleMetadata)
	srv.mux.HandleFunc("GET /sources/{id}/summary", srv.handleSummary)
	srv.mux.HandleFunc("GET /sources/{id}/sample", srv.handleSample)
	srv.mux.HandleFunc("POST /sources/{id}/query", srv.handleQuery)
	return srv
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) source(w http.ResponseWriter, r *http.Request) (*source.Source, bool) {
	id := r.PathValue("id")
	src, ok := s.res.Source(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown source %q", id), http.StatusNotFound)
		return nil, false
	}
	return src, true
}

// wantsJSON reports whether the request prefers the JSON encoding.
func wantsJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), JSONContentType)
}

// writeObjects delivers SOIF objects in the encoding the request asked
// for: length-framed SOIF text by default, JSON when Accept prefers it.
func writeObjects(w http.ResponseWriter, r *http.Request, objs []*soif.Object) {
	var data []byte
	var err error
	ct := ContentType
	if wantsJSON(r) {
		ct = JSONContentType
		data, err = soif.MarshalAllJSON(objs)
	} else {
		data, err = soif.MarshalAll(objs)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ct)
	// Content summaries in particular compress extremely well; honor
	// gzip when the client accepts it (Go's default HTTP client does,
	// and decompresses transparently).
	if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") && len(data) > 1024 {
		w.Header().Set("Content-Encoding", "gzip")
		gz := gzip.NewWriter(w)
		_, _ = gz.Write(data)
		_ = gz.Close()
		return
	}
	_, _ = w.Write(data)
}

func (s *Server) handleResource(w http.ResponseWriter, r *http.Request) {
	writeObjects(w, r, []*soif.Object{s.res.Description().ToSOIF()})
}

func (s *Server) handleMetadata(w http.ResponseWriter, r *http.Request) {
	src, ok := s.source(w, r)
	if !ok {
		return
	}
	writeObjects(w, r, []*soif.Object{src.Metadata().ToSOIF()})
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	src, ok := s.source(w, r)
	if !ok {
		return
	}
	writeObjects(w, r, []*soif.Object{src.ContentSummary().ToSOIF()})
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	src, ok := s.source(w, r)
	if !ok {
		return
	}
	entries, err := src.SampleResults()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var objs []*soif.Object
	for _, e := range entries {
		qo, err := e.Query.ToSOIF()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		objs = append(objs, qo)
		objs = append(objs, e.Results.ToSOIF()...)
	}
	writeObjects(w, r, objs)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src, ok := s.source(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxQueryBytes {
		http.Error(w, "query too large", http.StatusRequestEntityTooLarge)
		return
	}
	var obj *soif.Object
	if strings.Contains(r.Header.Get("Content-Type"), JSONContentType) {
		obj = &soif.Object{}
		err = obj.UnmarshalJSON(body)
	} else {
		obj, err = soif.Unmarshal(body)
	}
	if err != nil {
		http.Error(w, "malformed query object: "+err.Error(), http.StatusBadRequest)
		return
	}
	q, err := query.FromSOIF(obj)
	if err != nil {
		http.Error(w, "malformed query: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Additional same-resource sources route through the resource, which
	// eliminates duplicates; a plain query goes straight to the source.
	var rr *result.Results
	if len(q.Sources) > 0 {
		rr, err = s.res.Search(src.ID(), q)
	} else {
		rr, err = src.Search(q)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeObjects(w, r, rr.ToSOIF())
}
