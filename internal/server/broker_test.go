package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/core"
	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/peer"
	"starts/internal/qcache"
	"starts/internal/query"
	"starts/internal/source"
)

// regionalBroker builds a one-source regional metasearcher around docs,
// wraps it as a broker Conn and serves it over HTTP via ConnServer.
func regionalBroker(t *testing.T, brokerID, sourceID string, docs []*index.Document) *httptest.Server {
	t.Helper()
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := source.New(sourceID, eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddAll(docs); err != nil {
		t.Fatal(err)
	}
	ms := core.New(core.Options{Timeout: 5 * time.Second})
	t.Cleanup(ms.Close)
	ms.Add(client.NewLocalConn(src, nil))
	broker, err := ms.NewBroker(brokerID)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Config.Handler = NewConnServer(broker, ts.URL)
	t.Cleanup(ts.Close)
	return ts
}

func rankingQuery(t *testing.T, src string) *query.Query {
	t.Helper()
	q := query.New()
	r, err := query.ParseRanking(src)
	if err != nil {
		t.Fatal(err)
	}
	q.Ranking = r
	return q
}

// TestZBrokerRouting is the ZBroker scenario end to end: two regional
// metasearchers publish themselves as STARTS sources via ConnServer, a
// front metasearcher discovers both, and its GlOSS selector routes each
// query to the one region whose served summary carries the terms —
// rank-merging that region's answer, never contacting the other.
func TestZBrokerRouting(t *testing.T) {
	dbDocs := []*index.Document{
		{Linkage: "http://db/1", Title: "Distributed databases", Body: "Distributed database systems and query processing.", Date: time.Date(1995, 1, 1, 0, 0, 0, 0, time.UTC)},
		{Linkage: "http://db/2", Title: "Query optimization", Body: "Cost models for database query optimizers.", Date: time.Date(1995, 6, 1, 0, 0, 0, 0, time.UTC)},
	}
	gardenDocs := []*index.Document{
		{Linkage: "http://g/1", Title: "Gardening", Body: "Compost heaps and mulch for vegetable beds.", Date: time.Date(1994, 1, 1, 0, 0, 0, 0, time.UTC)},
	}
	east := regionalBroker(t, "region-east", "East-DB", dbDocs)
	west := regionalBroker(t, "region-west", "West-Garden", gardenDocs)

	ctx := context.Background()
	front := core.New(core.Options{Timeout: 5 * time.Second, MaxSources: 1})
	t.Cleanup(front.Close)
	for _, ts := range []*httptest.Server{east, west} {
		conns, err := client.NewClient(nil).Discover(ctx, ts.URL+"/resource")
		if err != nil {
			t.Fatalf("Discover %s: %v", ts.URL, err)
		}
		for _, c := range conns {
			front.Add(c)
		}
	}

	ans, err := front.Search(ctx, rankingQuery(t, `list((body-of-text "compost"))`))
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(ans.Contacted) != 1 || ans.Contacted[0] != "region-west" {
		t.Fatalf("compost query contacted %v, want exactly region-west", ans.Contacted)
	}
	if len(ans.Documents) == 0 || ans.Documents[0].Linkage() != "http://g/1" {
		t.Fatalf("compost answer = %+v, want the gardening doc first", ans.Documents)
	}

	ans, err = front.Search(ctx, rankingQuery(t, `list((body-of-text "databases"))`))
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(ans.Contacted) != 1 || ans.Contacted[0] != "region-east" {
		t.Fatalf("databases query contacted %v, want exactly region-east", ans.Contacted)
	}
	for _, d := range ans.Documents {
		if d.Linkage() == "http://g/1" {
			t.Fatal("databases answer leaked a gardening doc")
		}
	}
}

// TestConnServerBatchEndpoint pins the wire contract HTTPConn.QueryBatch
// depends on: the ConnServer's query-batch route accepts an @SQuery
// stream and answers index-aligned frames.
func TestConnServerBatchEndpoint(t *testing.T) {
	ts := regionalBroker(t, "region-b", "B-Src", []*index.Document{
		{Linkage: "http://b/1", Title: "Databases", Body: "database systems", Date: time.Date(1995, 1, 1, 0, 0, 0, 0, time.UTC)},
	})
	ctx := context.Background()
	conns, err := client.NewClient(nil).Discover(ctx, ts.URL+"/resource")
	if err != nil {
		t.Fatal(err)
	}
	hc, ok := conns[0].(*client.HTTPConn)
	if !ok {
		t.Fatalf("Discover returned %T", conns[0])
	}
	qs := []*query.Query{
		rankingQuery(t, `list((body-of-text "database"))`),
		rankingQuery(t, `list((body-of-text "nothing-matches-this"))`),
	}
	results, errs := hc.QueryBatch(ctx, qs)
	if errs[0] != nil {
		t.Fatalf("batch item 0: %v", errs[0])
	}
	if len(results[0].Documents) == 0 {
		t.Fatal("batch item 0 returned no documents")
	}
	if errs[1] != nil {
		t.Fatalf("batch item 1: %v", errs[1])
	}
}

// TestServerPeerCacheRoutes pins the WithPeerCache mounting: the peer
// endpoints ride on a regular resource server, instrumented and visible
// at /debug/peers, and a second node's store reads entries through them.
func TestServerPeerCacheRoutes(t *testing.T) {
	res := source.NewResource()
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := source.New("S1", eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Add(src); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(http.NotFoundHandler())
	t.Cleanup(ts.Close)
	serverStore := peer.New(peer.Config{Self: ts.URL, Codec: peer.StringCodec{}})
	ts.Config.Handler = New(res, ts.URL, WithPeerCache(serverStore))

	// A pure-client store (no Self: it serves no ring share) whose only
	// peer is the server; every key routes to the server's local store.
	clientStore := peer.New(peer.Config{
		Peers:   []string{ts.URL},
		Codec:   peer.StringCodec{},
		Timeout: 500 * time.Millisecond,
	})
	now := time.Now()
	clientStore.Put("via-server", qcache.Entry{
		Val: "hello", Expires: now.Add(time.Hour), StaleUntil: now.Add(2 * time.Hour),
	})
	if _, ok := serverStore.Local().Get("via-server", now); !ok {
		t.Fatal("entry put through the server's peer routes is not in its local store")
	}
	e, ok := clientStore.Get("via-server", now)
	if !ok || e.Val != "hello" {
		t.Fatalf("remote read through server routes: %v/%v", e.Val, ok)
	}
	clientStore.Evict("via-server")
	if _, ok := clientStore.Get("via-server", now); ok {
		t.Fatal("entry survived eviction through server routes")
	}

	resp, err := http.Get(ts.URL + "/debug/peers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/peers: %s", resp.Status)
	}
}
