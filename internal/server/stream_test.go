package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/core"
	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/merge"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// TestLeafStreamEndpoint: ?stream=1 against a leaf server answers with
// @SQStreamItem framing whose terminal frame is exactly the buffered
// endpoint's answer.
func TestLeafStreamEndpoint(t *testing.T) {
	ts, _ := startTestServer(t)
	ctx := context.Background()
	c := client.NewClient(nil)
	q := rankingQuery(t, `list((body-of-text "distributed"))`)

	plain, err := c.Query(ctx, ts.URL+"/sources/Source-1/query", q)
	if err != nil {
		t.Fatal(err)
	}
	var frames []result.StreamItem
	streamed, err := c.QueryStream(ctx, client.StreamURL(ts.URL+"/sources/Source-1/query"), q,
		func(it result.StreamItem) error {
			frames = append(frames, it)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 || frames[len(frames)-1].Final == nil {
		t.Fatalf("stream ended without a terminal frame (%d frames)", len(frames))
	}
	if len(streamed.Documents) != len(plain.Documents) {
		t.Fatalf("streamed %d docs, buffered %d", len(streamed.Documents), len(plain.Documents))
	}
	for i := range plain.Documents {
		if streamed.Documents[i].Linkage() != plain.Documents[i].Linkage() {
			t.Fatalf("rank %d: streamed %s, buffered %s",
				i, streamed.Documents[i].Linkage(), plain.Documents[i].Linkage())
		}
	}
}

// gatedConn parks Query until the gate channel closes, and records
// whether a query has finished.
type gatedConn struct {
	client.Conn
	gate     chan struct{}
	finished atomic.Bool
}

func (g *gatedConn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer g.finished.Store(true)
	return g.Conn.Query(ctx, q)
}

func mkStreamSource(t *testing.T, id string, docs []*index.Document) *source.Source {
	t.Helper()
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := source.New(id, eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddAll(docs); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestConnServerStreamsBeforeSlowSource is the tentpole's wire
// acceptance test: a broker over a fast and a gated (slow) source,
// published through a ConnServer and queried with HTTPConn.QueryStream,
// must deliver the fast source's rank-stable documents over HTTP while
// the slow source is still in flight — and the terminal answer must
// still carry both sources' documents.
func TestConnServerStreamsBeforeSlowSource(t *testing.T) {
	date := time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC)
	fastDocs := []*index.Document{
		{Linkage: "http://fast/1", Title: "fast one", Body: "metasearch merging ranking metasearch", Date: date},
		{Linkage: "http://fast/2", Title: "fast two", Body: "metasearch selection ranking", Date: date},
		{Linkage: "http://fast/3", Title: "fast three", Body: "metasearch harvesting", Date: date},
	}
	slowDocs := []*index.Document{
		{Linkage: "http://slow/1", Title: "slow one", Body: "metasearch archive", Date: date},
	}
	ms := core.New(core.Options{Timeout: 10 * time.Second, Merger: merge.RoundRobin{}})
	t.Cleanup(ms.Close)
	// Registration order pins nothing; selection order does. The fast
	// source carries three matching documents to the slow one's single,
	// so GlOSS ranks it first and round-robin's first pick is stable the
	// moment the fast source answers.
	ms.Add(client.NewLocalConn(mkStreamSource(t, "fast", fastDocs), nil))
	release := make(chan struct{})
	slow := &gatedConn{Conn: client.NewLocalConn(mkStreamSource(t, "slow", slowDocs), nil), gate: release}
	ms.Add(slow)
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
	})

	broker, err := ms.NewBroker("region")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Config.Handler = NewConnServer(broker, ts.URL)
	t.Cleanup(ts.Close)

	ctx := context.Background()
	conns, err := client.NewClient(nil).Discover(ctx, ts.URL+"/resource")
	if err != nil {
		t.Fatal(err)
	}
	if len(conns) != 1 {
		t.Fatalf("discovered %d conns", len(conns))
	}
	sc, ok := conns[0].(client.StreamConn)
	if !ok {
		t.Fatalf("discovered conn %T is not a StreamConn", conns[0])
	}

	q := rankingQuery(t, `list((body-of-text "metasearch"))`)
	var early []string
	slowWasPending := false
	final, err := sc.QueryStream(ctx, q, func(it result.StreamItem) error {
		if it.Final != nil {
			return nil
		}
		if len(early) == 0 && len(it.Docs) > 0 {
			// First documents on the wire: the gated source must still be
			// in flight, and only now is it allowed to answer.
			slowWasPending = !slow.finished.Load()
			close(release)
		}
		for _, d := range it.Docs {
			early = append(early, d.Linkage())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(early) == 0 {
		t.Fatal("no documents streamed before the terminal frame")
	}
	if !slowWasPending {
		t.Fatal("first streamed documents arrived only after the slow source answered")
	}
	// The early prefix is exactly the final answer's head, and the final
	// answer includes the slow source's document.
	if len(early) > len(final.Documents) {
		t.Fatalf("streamed %d docs, final has %d", len(early), len(final.Documents))
	}
	for i, url := range early {
		if final.Documents[i].Linkage() != url {
			t.Fatalf("streamed[%d]=%s but final[%d]=%s", i, url, i, final.Documents[i].Linkage())
		}
	}
	found := false
	for _, d := range final.Documents {
		if d.Linkage() == "http://slow/1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("final answer %v lost the slow source's document", linkages(final.Documents))
	}
}

func linkages(docs []*result.Document) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.Linkage()
	}
	return out
}

// failingBrokerConn fails every query.
type failingBrokerConn struct{ client.Conn }

func (f *failingBrokerConn) Query(context.Context, *query.Query) (*result.Results, error) {
	return nil, errors.New("all members down")
}

// TestConnServerInBandError: the ConnServer commits its preamble before
// the merge, so a failed query surfaces as an in-band @SQStreamItem
// error object — which both the buffered client path (result.Parse) and
// the streaming decoder report as a *result.StreamError.
func TestConnServerInBandError(t *testing.T) {
	src := mkStreamSource(t, "S", []*index.Document{
		{Linkage: "http://s/1", Title: "doc", Body: "words", Date: time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC)},
	})
	conn := &failingBrokerConn{Conn: client.NewLocalConn(src, nil)}
	ts := httptest.NewServer(NewConnServer(conn, ""))
	t.Cleanup(ts.Close)

	ctx := context.Background()
	c := client.NewClient(nil)
	q := rankingQuery(t, `list((body-of-text "words"))`)
	url := ts.URL + "/sources/S/query"

	var serr *result.StreamError
	if _, err := c.Query(ctx, url, q); !errors.As(err, &serr) {
		t.Fatalf("buffered query error = %v, want *result.StreamError", err)
	}
	if _, err := c.QueryStream(ctx, client.StreamURL(url), q, nil); !errors.As(err, &serr) {
		t.Fatalf("streamed query error = %v, want *result.StreamError", err)
	}
}

// TestConnServerStreamPlainConn: ?stream=1 against a ConnServer whose
// Conn cannot stream still answers with legal stream framing — one
// terminal frame.
func TestConnServerStreamPlainConn(t *testing.T) {
	// BrokerConn without QueryStream: wrap a LocalConn so the StreamConn
	// capability is hidden.
	src := mkStreamSource(t, "S", []*index.Document{
		{Linkage: "http://s/1", Title: "doc", Body: "metasearch words", Date: time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC)},
	})
	conn := struct{ client.Conn }{client.NewLocalConn(src, nil)}
	ts := httptest.NewServer(NewConnServer(conn, ""))
	t.Cleanup(ts.Close)

	var frames []result.StreamItem
	q := rankingQuery(t, `list((body-of-text "metasearch"))`)
	final, err := client.NewClient(nil).QueryStream(context.Background(),
		client.StreamURL(ts.URL+"/sources/S/query"), q,
		func(it result.StreamItem) error {
			frames = append(frames, it)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || frames[0].Final == nil {
		t.Fatalf("plain conn streamed %d frames, want exactly one terminal", len(frames))
	}
	if len(final.Documents) != 1 {
		t.Fatalf("final = %v", linkages(final.Documents))
	}
}
