package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"starts/internal/client"
	"starts/internal/obs"
	"starts/internal/query"
)

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := startTestServer(t)
	ctx := context.Background()
	hc := client.NewClient(nil)
	conns, err := hc.Discover(ctx, ts.URL+"/resource")
	if err != nil {
		t.Fatal(err)
	}
	q := query.New()
	if q.Ranking, err = query.ParseRanking(`list((body-of-text "distributed"))`); err != nil {
		t.Fatal(err)
	}
	if _, err := conns[0].Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	// An unknown source produces a counted 404.
	resp, err := http.Get(ts.URL + "/sources/nope/metadata")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown source status = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		`starts_server_requests_total{route="query"} 1`,
		`starts_server_requests_total{route="resource"} 1`,
		`starts_server_errors_total{route="metadata",code="404"} 1`,
		`starts_server_query_docs_total{source="Source-1"}`,
		`starts_server_seconds_count{route="query"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
}

func TestLastTracesEndpoint(t *testing.T) {
	ts, _ := startTestServer(t)
	ctx := context.Background()
	hc := client.NewClient(nil)
	conns, err := hc.Discover(ctx, ts.URL+"/resource")
	if err != nil {
		t.Fatal(err)
	}
	q := query.New()
	if q.Ranking, err = query.ParseRanking(`list((body-of-text "distributed"))`); err != nil {
		t.Fatal(err)
	}
	if _, err := conns[0].Query(ctx, q); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/debug/last-traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{`trace "query Source-1"`, "decode", "search [Source-1]", "encode", "docs="} {
		if !strings.Contains(out, want) {
			t.Errorf("/debug/last-traces missing %q:\n%s", want, out)
		}
	}
}

func TestServerSharedRegistryOption(t *testing.T) {
	_, res := startTestServer(t)
	reg := obs.NewRegistry()
	srv := New(res, "http://example", WithMetrics(reg), WithTraceCapacity(4))
	if srv.Metrics() != reg {
		t.Error("WithMetrics registry not adopted")
	}
	if srv.Traces() == nil {
		t.Error("trace ring missing")
	}
}
