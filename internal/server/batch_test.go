package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/soif"
)

// batchBody encodes qs as a batch request body (a stream of @SQuery
// objects).
func batchBody(t *testing.T, qs []*query.Query) *bytes.Buffer {
	t.Helper()
	var body bytes.Buffer
	enc := soif.NewEncoder(&body)
	for _, q := range qs {
		o, err := q.ToSOIF()
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(o); err != nil {
			t.Fatal(err)
		}
	}
	return &body
}

func rankQuery(t *testing.T, expr string) *query.Query {
	t.Helper()
	q := query.New()
	r, err := query.ParseRanking(expr)
	if err != nil {
		t.Fatal(err)
	}
	q.Ranking = r
	return q
}

// TestQueryBatchEndToEnd round-trips a multi-query batch through the
// HTTP conn: distinct sub-queries, one wire call, index-aligned results.
func TestQueryBatchEndToEnd(t *testing.T) {
	ts, _ := startTestServer(t)
	ctx := context.Background()
	c := client.NewClient(ts.Client())
	conns, err := c.Discover(ctx, ts.URL+"/resource")
	if err != nil {
		t.Fatal(err)
	}
	bc, ok := conns[0].(client.BatchConn)
	if !ok {
		t.Fatalf("HTTP conn %T is not a BatchConn", conns[0])
	}
	qs := []*query.Query{
		rankQuery(t, `list((any "distributed"))`),
		rankQuery(t, `list((any "metasearchers"))`),
		rankQuery(t, `list((any "xylophone"))`), // matches nothing
	}
	results, errs := bc.QueryBatch(ctx, qs)
	if len(results) != 3 || len(errs) != 3 {
		t.Fatalf("got %d results, %d errs", len(results), len(errs))
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if len(results[0].Documents) != 2 {
		t.Errorf("item 0 docs = %d, want 2", len(results[0].Documents))
	}
	if len(results[1].Documents) != 1 {
		t.Errorf("item 1 docs = %d, want 1", len(results[1].Documents))
	}
	if len(results[2].Documents) != 0 {
		t.Errorf("item 2 docs = %d, want 0", len(results[2].Documents))
	}
}

// TestQueryBatchStreamsFirstItem proves the streaming contract: the
// first finished item's frame is readable off the wire BEFORE the last
// item has even been evaluated. Item 1 is parked on a gate; the test
// decodes item 0 from the live response body, and only then opens the
// gate. If the server buffered the response until wg.Wait, the decode
// would block forever and the watchdog would fail the test.
func TestQueryBatchStreamsFirstItem(t *testing.T) {
	gate := make(chan struct{})
	batchItemGate = func(index int) {
		if index == 1 {
			<-gate
		}
	}
	defer func() { batchItemGate = nil }()

	ts, _ := startTestServer(t)
	qs := []*query.Query{
		rankQuery(t, `list((any "distributed"))`),
		rankQuery(t, `list((any "metasearchers"))`),
	}
	resp, err := ts.Client().Post(ts.URL+"/sources/Source-1/query-batch", ContentType, batchBody(t, qs))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}

	type frame struct {
		idx int
		res *result.Results
		err error
	}
	frames := make(chan frame, 2)
	go func() {
		dec := soif.NewDecoder(resp.Body)
		for {
			idx, r, itemErr, derr := result.DecodeBatchItem(dec)
			if derr != nil {
				return
			}
			frames <- frame{idx, r, itemErr}
		}
	}()

	// Item 0 must arrive while item 1 is still parked behind the gate.
	select {
	case f := <-frames:
		if f.idx != 0 || f.err != nil {
			t.Fatalf("first frame = item %d err %v, want item 0", f.idx, f.err)
		}
		if len(f.res.Documents) != 2 {
			t.Errorf("item 0 docs = %d, want 2", len(f.res.Documents))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("item 0 not streamed while item 1 was still running: server buffered the batch")
	}
	close(gate)
	select {
	case f := <-frames:
		if f.idx != 1 || f.err != nil {
			t.Fatalf("second frame = item %d err %v, want item 1", f.idx, f.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("item 1 never arrived after the gate opened")
	}
}

// TestQueryBatchItemErrorInBand pins per-item error framing: a sub-query
// the engine rejects gets an in-band error frame while its batchmates
// still succeed, all under one 200.
func TestQueryBatchItemErrorInBand(t *testing.T) {
	ts, _ := startTestServer(t)
	bad := rankQuery(t, `list((any "distributed"))`)
	bad.Sources = []string{"no-such-source"}
	qs := []*query.Query{
		rankQuery(t, `list((any "distributed"))`),
		bad,
	}
	resp, err := ts.Client().Post(ts.URL+"/sources/Source-1/query-batch", ContentType, batchBody(t, qs))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s, want 200 with in-band item errors", resp.Status)
	}
	dec := soif.NewDecoder(resp.Body)
	var okDocs, itemErrs int
	for {
		idx, r, itemErr, derr := result.DecodeBatchItem(dec)
		if derr == io.EOF {
			break
		}
		if derr != nil {
			t.Fatalf("decode: %v", derr)
		}
		switch {
		case itemErr != nil:
			if idx != 1 {
				t.Errorf("error frame for item %d, want 1: %v", idx, itemErr)
			}
			itemErrs++
		default:
			if idx != 0 {
				t.Errorf("result frame for item %d, want 0", idx)
			}
			okDocs = len(r.Documents)
		}
	}
	if itemErrs != 1 {
		t.Errorf("error frames = %d, want 1", itemErrs)
	}
	if okDocs != 2 {
		t.Errorf("healthy item docs = %d, want 2", okDocs)
	}
}

// TestQueryBatchRejectsBadRequests pins the request-level failure modes:
// an empty body and a garbage body are statuses, not frames.
func TestQueryBatchRejectsBadRequests(t *testing.T) {
	ts, _ := startTestServer(t)
	cases := []struct {
		name string
		body io.Reader
		want int
	}{
		{"empty", strings.NewReader(""), http.StatusBadRequest},
		{"garbage", strings.NewReader("not soif at all"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/sources/Source-1/query-batch", ContentType, tc.body)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// TestDecodeBatchRequestCaps pins the item cap.
func TestDecodeBatchRequestCaps(t *testing.T) {
	q := query.New()
	r, err := query.ParseRanking(`list((any "x"))`)
	if err != nil {
		t.Fatal(err)
	}
	q.Ranking = r
	var body bytes.Buffer
	enc := soif.NewEncoder(&body)
	for i := 0; i <= maxBatchItems; i++ {
		o, err := q.ToSOIF()
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(o); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := decodeBatchRequest(&body); !errors.Is(err, errBatchTooLarge) {
		t.Errorf("err = %v, want errBatchTooLarge", err)
	}
}
