package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"starts/internal/obs"
	"starts/internal/qcache"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/soif"
	"starts/internal/source"
)

// maxBatchBytes bounds an accepted batch request body; each query is
// small (maxQueryBytes), a drain is at most a few dozen of them.
const maxBatchBytes = 16 << 20

// maxBatchItems bounds the sub-queries one batch request may carry, so
// a single request cannot fan out unbounded server-side work.
const maxBatchItems = 256

// handleQueryBatch evaluates a multi-query request — the body is a
// stream of @SQuery objects — concurrently, and streams each item's
// result back as an @SQBatchItem frame the moment it completes, in
// completion order. A failed item gets an error frame; the rest of the
// batch is unaffected. The whole batch costs one admission-gate slot
// and one HTTP round trip.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	src, ok := s.source(w, r)
	if !ok {
		return
	}
	release, err := s.gate.Acquire(r.Context())
	if err != nil {
		if errors.Is(err, qcache.ErrShed) {
			w.Header().Set("Retry-After", strconv.Itoa(s.gate.RetryAfter()))
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer release()
	tr := obs.NewTrace("query-batch " + src.ID())
	defer func() {
		tr.Finish()
		s.traces.Add(tr)
	}()
	dsp := tr.StartSpan("decode")
	qs, err := decodeBatchRequest(r.Body)
	if err != nil {
		dsp.End(err)
		status := http.StatusBadRequest
		if errors.Is(err, errBatchTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	dsp.Annotate("items", strconv.Itoa(len(qs)))
	dsp.End(nil)

	// From here on the response streams: headers go out before any item
	// finishes, so per-item failures are framed in-band, not as statuses.
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	var (
		writeMu  sync.Mutex
		enc      = soif.NewEncoder(w)
		flusher  http.Flusher
		docs     int64
		writeErr error
	)
	if f, ok := w.(http.Flusher); ok {
		flusher = f
	}
	ssp := tr.StartSpan("search")
	ssp.SetSource(src.ID())
	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q *query.Query) {
			defer wg.Done()
			if batchItemGate != nil {
				batchItemGate(i)
			}
			rr, qerr := searchOne(s.res, src, q)
			writeMu.Lock()
			defer writeMu.Unlock()
			if writeErr != nil {
				// The connection already broke; nothing more to send.
				return
			}
			if qerr == nil {
				docs += int64(len(rr.Documents))
			}
			if werr := result.EncodeBatchItem(enc, i, rr, qerr); werr != nil {
				writeErr = werr
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}(i, q)
	}
	wg.Wait()
	ssp.Annotate("docs", strconv.FormatInt(docs, 10))
	ssp.End(writeErr)
	s.metrics.Counter(obs.L("starts_server_query_docs_total", "source", src.ID())).Add(docs)
	s.metrics.Counter(obs.L("starts_server_batch_items_total", "source", src.ID())).
		Add(int64(len(qs)))
}

// batchItemGate, when non-nil (tests only), runs before a batch item is
// evaluated; the streaming test holds one item open with it while
// asserting the other items' frames are already readable on the wire.
var batchItemGate func(index int)

// searchOne evaluates one batch item with the same routing rule as the
// single-query handler: queries naming additional same-resource sources
// go through the resource (which deduplicates), plain ones go straight
// to the source.
func searchOne(res *source.Resource, src *source.Source, q *query.Query) (*result.Results, error) {
	if len(q.Sources) > 0 {
		return res.Search(src.ID(), q)
	}
	return src.Search(q)
}

var errBatchTooLarge = errors.New("batch request too large")

// decodeBatchRequest reads the request body as a stream of @SQuery
// objects.
func decodeBatchRequest(body io.Reader) ([]*query.Query, error) {
	dec := soif.NewDecoder(io.LimitReader(body, maxBatchBytes+1))
	var qs []*query.Query
	for {
		obj, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("malformed batch query %d: %w", len(qs), err)
		}
		q, err := query.FromSOIF(obj)
		if err != nil {
			return nil, fmt.Errorf("malformed batch query %d: %w", len(qs), err)
		}
		qs = append(qs, q)
		if len(qs) > maxBatchItems {
			return nil, errBatchTooLarge
		}
	}
	if len(qs) == 0 {
		return nil, errors.New("empty batch: body must carry at least one @SQuery")
	}
	return qs, nil
}
