package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/soif"
	"starts/internal/source"
)

// BrokerConn is the method set ConnServer needs from a source
// connection — structurally identical to client.Conn (which satisfies
// it), declared here so serving a conn does not make the server package
// depend on the client package.
type BrokerConn interface {
	SourceID() string
	Metadata(ctx context.Context) (*meta.SourceMeta, error)
	Summary(ctx context.Context) (*meta.ContentSummary, error)
	Sample(ctx context.Context) ([]*source.SampleEntry, error)
	Query(ctx context.Context, q *query.Query) (*result.Results, error)
}

// brokerBatchConn mirrors client.BatchConn: a BrokerConn that takes a
// whole batch in one call.
type brokerBatchConn interface {
	BrokerConn
	QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error)
}

// streamBrokerConn mirrors client.StreamConn: a BrokerConn that can
// deliver an answer incrementally (core.Broker can — its metasearcher
// streams rank-stable prefixes as sources complete). A ?stream=1 query
// against a plain BrokerConn still gets stream framing, just with
// everything in the terminal frame.
type streamBrokerConn interface {
	BrokerConn
	QueryStream(ctx context.Context, q *query.Query, sink func(result.StreamItem) error) (*result.Results, error)
}

// ConnServer serves any client.Conn as a one-source STARTS resource
// over HTTP — the publishing half of a broker hierarchy. A regional
// metasearcher wraps itself in a core.Broker (a Conn), a ConnServer
// puts that Conn on the wire, and a front metasearcher discovers and
// queries it exactly like any leaf source: ZBroker-style routing built
// entirely from the protocol's own pieces.
//
// The routes mirror Server's, with the Conn behind them:
//
//	GET  /resource                 -> @SResource naming the one source
//	GET  /sources/{id}/metadata    -> the Conn's metadata, its linkage
//	     URLs rewritten to point back at this server (a core.Broker
//	     exports starts-broker:// placeholders; harvesters need HTTP)
//	GET  /sources/{id}/summary     -> the Conn's content summary
//	GET  /sources/{id}/sample      -> the Conn's sample results
//	POST /sources/{id}/query       -> one query through the Conn
//	POST /sources/{id}/query-batch -> @SQBatchItem-framed stream; items
//	     run through the Conn concurrently (one wire call per item on a
//	     plain Conn, one batch call on a client.BatchConn)
type ConnServer struct {
	conn    BrokerConn
	baseURL string
	mux     *http.ServeMux
}

// NewConnServer serves conn at baseURL (scheme://host[:port], no
// trailing slash — stamped into the exported metadata's linkage URLs).
func NewConnServer(conn BrokerConn, baseURL string) *ConnServer {
	cs := &ConnServer{conn: conn, baseURL: strings.TrimSuffix(baseURL, "/"), mux: http.NewServeMux()}
	cs.mux.HandleFunc("GET /resource", cs.handleResource)
	cs.mux.HandleFunc("GET /sources/{id}/metadata", cs.withSource(cs.handleMetadata))
	cs.mux.HandleFunc("GET /sources/{id}/summary", cs.withSource(cs.handleSummary))
	cs.mux.HandleFunc("GET /sources/{id}/sample", cs.withSource(cs.handleSample))
	cs.mux.HandleFunc("POST /sources/{id}/query", cs.withSource(cs.handleQuery))
	cs.mux.HandleFunc("POST /sources/{id}/query-batch", cs.withSource(cs.handleQueryBatch))
	return cs
}

// ServeHTTP implements http.Handler.
func (cs *ConnServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	cs.mux.ServeHTTP(w, r)
}

// withSource guards a route against requests for a source this server
// does not carry.
func (cs *ConnServer) withSource(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if id := r.PathValue("id"); id != cs.conn.SourceID() {
			http.Error(w, fmt.Sprintf("unknown source %q", id), http.StatusNotFound)
			return
		}
		h(w, r)
	}
}

// sourceURL is this server's URL for one of the source's endpoints.
func (cs *ConnServer) sourceURL(suffix string) string {
	return cs.baseURL + "/sources/" + cs.conn.SourceID() + "/" + suffix
}

func (cs *ConnServer) handleResource(w http.ResponseWriter, r *http.Request) {
	res := &meta.Resource{Entries: []meta.ResourceEntry{{
		SourceID:    cs.conn.SourceID(),
		MetadataURL: cs.sourceURL("metadata"),
	}}}
	writeObjects(w, r, []*soif.Object{res.ToSOIF()})
}

func (cs *ConnServer) handleMetadata(w http.ResponseWriter, r *http.Request) {
	m, err := cs.conn.Metadata(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	// The Conn's own linkage (a core.Broker's starts-broker://
	// placeholders, or a leaf's internal URLs) is unreachable from the
	// harvester's side of the wire; every endpoint lives here now.
	mm := *m
	mm.Linkage = cs.sourceURL("query")
	mm.ContentSummaryLinkage = cs.sourceURL("summary")
	mm.SampleDatabaseResults = cs.sourceURL("sample")
	writeObjects(w, r, []*soif.Object{mm.ToSOIF()})
}

func (cs *ConnServer) handleSummary(w http.ResponseWriter, r *http.Request) {
	sum, err := cs.conn.Summary(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeObjects(w, r, []*soif.Object{sum.ToSOIF()})
}

func (cs *ConnServer) handleSample(w http.ResponseWriter, r *http.Request) {
	entries, err := cs.conn.Sample(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	var objs []*soif.Object
	for _, e := range entries {
		qo, err := e.Query.ToSOIF()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		objs = append(objs, qo)
		objs = append(objs, e.Results.ToSOIF()...)
	}
	writeObjects(w, r, objs)
}

// handleQuery evaluates one query through the Conn. The request is
// decoded up front so malformed queries still get their 4xx, but the
// HTTP preamble is committed and flushed before the (potentially long)
// merge behind the Conn completes: the ConnServer fronts a whole broker
// fan-out, and a client should see bytes when the search starts, not
// when its slowest source finishes. A failure after the committed
// preamble is reported as an in-band @SQStreamItem error object, which
// result.Parse surfaces as a *result.StreamError. JSON responses keep
// the buffered path (and its HTTP error statuses): the JSON rendering
// is one document, not a stream.
//
// With ?stream=1 the response is @SQStreamItem-framed and, when the
// Conn supports streaming, each rank-stable slice of the answer is
// written and flushed the moment the merge proves it final.
func (cs *ConnServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxQueryBytes {
		http.Error(w, "query too large", http.StatusRequestEntityTooLarge)
		return
	}
	obj, err := soif.Unmarshal(body)
	if err != nil {
		http.Error(w, "malformed query object: "+err.Error(), http.StatusBadRequest)
		return
	}
	q, err := query.FromSOIF(obj)
	if err != nil {
		http.Error(w, "malformed query: "+err.Error(), http.StatusBadRequest)
		return
	}
	if wantsJSON(r) {
		rr, err := cs.conn.Query(r.Context(), q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		writeObjects(w, r, rr.ToSOIF())
		return
	}
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	flushTo(w)
	enc := soif.NewEncoder(w)
	if streamWanted(r) {
		cs.streamQuery(w, enc, r, q)
		return
	}
	rr, err := cs.conn.Query(r.Context(), q)
	if err != nil {
		_ = result.EncodeStreamError(enc, err)
		return
	}
	for _, o := range rr.ToSOIF() {
		if enc.Encode(o) != nil {
			return
		}
	}
}

// streamQuery writes a ?stream=1 answer. A streaming Conn drives the
// frames itself (each flushed as it stabilizes); a plain Conn yields a
// single terminal frame once its merge completes.
func (cs *ConnServer) streamQuery(w http.ResponseWriter, enc *soif.Encoder, r *http.Request, q *query.Query) {
	sc, ok := cs.conn.(streamBrokerConn)
	if !ok {
		rr, err := cs.conn.Query(r.Context(), q)
		if err != nil {
			_ = result.EncodeStreamError(enc, err)
			return
		}
		if result.EncodeStreamFinal(enc, rr) == nil {
			flushTo(w)
		}
		return
	}
	_, err := sc.QueryStream(r.Context(), q, func(it result.StreamItem) error {
		var werr error
		if it.Final != nil {
			werr = result.EncodeStreamFinal(enc, it.Final)
		} else {
			werr = result.EncodeStreamDocs(enc, it.Rank, it.Docs)
		}
		if werr != nil {
			return werr
		}
		flushTo(w)
		return nil
	})
	if err != nil {
		_ = result.EncodeStreamError(enc, err)
	}
}

// handleQueryBatch mirrors Server's batch route over the Conn: the body
// is a stream of @SQuery objects, the response a stream of @SQBatchItem
// frames in completion order. A BatchConn gets the whole batch in one
// call; a plain Conn runs the items concurrently.
func (cs *ConnServer) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	qs, err := decodeBatchRequest(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		if err == errBatchTooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	var (
		results []*result.Results
		errs    []error
	)
	if bc, ok := cs.conn.(brokerBatchConn); ok {
		results, errs = bc.QueryBatch(r.Context(), qs)
	} else {
		results = make([]*result.Results, len(qs))
		errs = make([]error, len(qs))
		var wg sync.WaitGroup
		for i, q := range qs {
			wg.Add(1)
			go func(i int, q *query.Query) {
				defer wg.Done()
				results[i], errs[i] = cs.conn.Query(r.Context(), q)
			}(i, q)
		}
		wg.Wait()
	}
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	enc := soif.NewEncoder(w)
	for i := range qs {
		if werr := result.EncodeBatchItem(enc, i, results[i], errs[i]); werr != nil {
			return
		}
	}
}
