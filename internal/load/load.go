// Package load is an open-loop load harness for metasearch fleets: it
// offers queries at a configured arrival rate — arrivals do not wait
// for completions, the defining property of an open loop, so queueing
// delay shows up as latency instead of silently throttling the offered
// rate — and reports latency and time-to-first-result percentiles from
// an obs.Registry's histograms. The query mix replays a small hot set
// (cache-warm traffic) against a Zipf-generated cold tail, mirroring
// the workloads the query cache and the streaming answer path are
// designed for.
//
// The harness drives any search path through a Runner callback, so the
// same workload can exercise an in-process Metasearcher, a streamed
// search, or a fleet behind HTTP — whatever the Runner closes over.
package load

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"starts/internal/obs"
	"starts/internal/query"
)

// Canonical metric names of the load harness. MLoadLatencySeconds is
// offered-to-answered wall time per completed query; MLoadTTFRSeconds is
// offered-to-first-result (streamed searches call first() at their first
// stable document; non-streamed Runners at completion, making the two
// distributions equal — which is exactly the comparison the streaming
// benchmark draws).
const (
	MLoadLatencySeconds = "starts_load_latency_seconds"
	MLoadTTFRSeconds    = "starts_load_ttfr_seconds"
	MLoadOffered        = "starts_load_offered_total"
	MLoadErrors         = "starts_load_errors_total"
	MLoadDropped        = "starts_load_dropped_total"
)

// Runner evaluates one offered query. Implementations must call first()
// exactly once when the first answer documents become available (a
// streaming Runner calls it from its sink; a batch Runner may ignore it
// — the harness then records first-result time at completion), and
// return when the answer is complete.
type Runner func(ctx context.Context, q *query.Query, first func()) error

// Config controls one load run.
type Config struct {
	// Rate is the offered arrival rate in queries per second (required).
	Rate float64
	// Duration is the offered-load window (required). Completions may
	// finish after it; the harness waits for in-flight queries.
	Duration time.Duration
	// Queries is the workload pool (required). Arrivals draw from it
	// deterministically under Seed.
	Queries []*query.Query
	// HotFraction of arrivals replay one of the pool's first HotCount
	// queries — the cache-warm hot set. The rest sweep the whole pool.
	// Zero means no hot set.
	HotFraction float64
	// HotCount sizes the hot set (default 4, clamped to the pool).
	HotCount int
	// MaxInflight bounds concurrently evaluating queries; arrivals over
	// the bound are dropped and counted, as an overloaded open-loop
	// client would. Zero means unbounded.
	MaxInflight int
	// Timeout bounds each query evaluation (default 30s).
	Timeout time.Duration
	// Seed makes the arrival sequence deterministic.
	Seed int64
	// Metrics receives the harness histograms; nil uses a private
	// registry. Sharing the fleet's registry puts offered-load latency
	// next to the fleet's own metrics on one /metrics view.
	Metrics *obs.Registry
}

// Percentiles summarizes one latency distribution.
type Percentiles struct {
	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	P99 time.Duration `json:"p99"`
	// Mean is Sum/Count, an honest average to sanity-check the tails.
	Mean time.Duration `json:"mean"`
}

// Report is the outcome of one load run.
type Report struct {
	// Offered counts arrivals, dropped included; Completed counts queries
	// that finished cleanly, Errors those whose Runner failed, Dropped
	// arrivals shed at the MaxInflight bound.
	Offered   int64 `json:"offered"`
	Completed int64 `json:"completed"`
	Errors    int64 `json:"errors"`
	Dropped   int64 `json:"dropped"`
	// Elapsed is offered-window start to last completion.
	Elapsed time.Duration `json:"elapsed"`
	// Throughput is completions per second over Elapsed.
	Throughput float64 `json:"throughput_qps"`
	// Latency is the completion-time distribution, TTFR the
	// time-to-first-result distribution.
	Latency Percentiles `json:"latency"`
	TTFR    Percentiles `json:"ttfr"`
}

func percentiles(h *obs.Histogram) Percentiles {
	p := Percentiles{
		P50: h.Quantile(0.50),
		P95: h.Quantile(0.95),
		P99: h.Quantile(0.99),
	}
	if n := h.Count(); n > 0 {
		p.Mean = h.Sum() / time.Duration(n)
	}
	return p
}

// Run offers cfg.Rate queries per second for cfg.Duration against run,
// waits for stragglers, and reports the distributions. The context
// cancels the whole run early.
func Run(ctx context.Context, cfg Config, run Runner) (*Report, error) {
	if cfg.Rate <= 0 {
		return nil, errors.New("load: Rate must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("load: Duration must be positive")
	}
	if len(cfg.Queries) == 0 {
		return nil, errors.New("load: empty query pool")
	}
	if run == nil {
		return nil, errors.New("load: nil Runner")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	hot := cfg.HotCount
	if hot <= 0 {
		hot = 4
	}
	if hot > len(cfg.Queries) {
		hot = len(cfg.Queries)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	latency := reg.Histogram(MLoadLatencySeconds)
	ttfr := reg.Histogram(MLoadTTFRSeconds)

	var (
		rep      Report
		inflight atomic.Int64
		wg       sync.WaitGroup
	)
	rng := rand.New(rand.NewSource(cfg.Seed))
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	deadline := start.Add(cfg.Duration)

offering:
	for time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			break offering
		case <-tick.C:
		}
		rep.Offered++
		reg.Counter(MLoadOffered).Inc()
		// Hot/cold mix, drawn on the offering goroutine so the sequence
		// is deterministic under Seed regardless of completion timing.
		var q *query.Query
		if cfg.HotFraction > 0 && rng.Float64() < cfg.HotFraction {
			q = cfg.Queries[rng.Intn(hot)]
		} else {
			q = cfg.Queries[rng.Intn(len(cfg.Queries))]
		}
		if cfg.MaxInflight > 0 && inflight.Load() >= int64(cfg.MaxInflight) {
			rep.Dropped++
			reg.Counter(MLoadDropped).Inc()
			continue
		}
		inflight.Add(1)
		wg.Add(1)
		go func(q *query.Query) {
			defer wg.Done()
			defer inflight.Add(-1)
			qctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			defer cancel()
			t0 := time.Now()
			gotFirst := false
			first := func() {
				if !gotFirst {
					gotFirst = true
					ttfr.Observe(time.Since(t0))
				}
			}
			err := run(qctx, q, first)
			d := time.Since(t0)
			if err != nil {
				atomic.AddInt64(&rep.Errors, 1)
				reg.Counter(MLoadErrors).Inc()
				return
			}
			if !gotFirst {
				// A batch Runner's first result IS its last.
				ttfr.Observe(d)
			}
			latency.Observe(d)
			atomic.AddInt64(&rep.Completed, 1)
		}(q)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(rep.Completed) / secs
	}
	rep.Latency = percentiles(latency)
	rep.TTFR = percentiles(ttfr)
	return &rep, ctx.Err()
}
