package load

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/obs"
	"starts/internal/query"
)

func loadQueries(t *testing.T, n int) []*query.Query {
	t.Helper()
	qs := make([]*query.Query, n)
	for i := range qs {
		q := query.New()
		r, err := query.ParseRanking(`list((body-of-text "metasearch"))`)
		if err != nil {
			t.Fatal(err)
		}
		q.Ranking = r
		qs[i] = q
	}
	return qs
}

func TestRunOpenLoop(t *testing.T) {
	var calls atomic.Int64
	rep, err := Run(context.Background(), Config{
		Rate:     200,
		Duration: 250 * time.Millisecond,
		Queries:  loadQueries(t, 8),
		Seed:     1,
	}, func(ctx context.Context, q *query.Query, first func()) error {
		calls.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Open loop: arrivals track the ticker, not completions. Allow wide
	// slack for scheduler jitter but demand a real query volume.
	if rep.Offered < 20 {
		t.Fatalf("offered %d queries at 200qps over 250ms", rep.Offered)
	}
	if rep.Completed != rep.Offered {
		t.Fatalf("completed %d of %d offered", rep.Completed, rep.Offered)
	}
	if got := calls.Load(); got != rep.Completed {
		t.Fatalf("runner ran %d times, report says %d", got, rep.Completed)
	}
	if rep.Errors != 0 || rep.Dropped != 0 {
		t.Fatalf("clean run reported errors=%d dropped=%d", rep.Errors, rep.Dropped)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput)
	}
	if rep.Latency.P50 <= 0 || rep.TTFR.P50 <= 0 {
		t.Fatalf("percentiles not populated: %+v / %+v", rep.Latency, rep.TTFR)
	}
}

// TestRunDropsOverInflightBound: a runner slower than the arrival rate
// with MaxInflight=1 must shed arrivals rather than queue them — the
// open loop keeps offering regardless.
func TestRunDropsOverInflightBound(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Rate:        200,
		Duration:    200 * time.Millisecond,
		Queries:     loadQueries(t, 2),
		MaxInflight: 1,
		Seed:        2,
	}, func(ctx context.Context, q *query.Query, first func()) error {
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Fatalf("no drops at 200qps against a 50ms runner with MaxInflight=1: %+v", rep)
	}
	if rep.Completed+rep.Dropped+rep.Errors != rep.Offered {
		t.Fatalf("accounting leak: %+v", rep)
	}
}

// TestRunTTFRBeatsLatency: a runner that calls first() well before it
// returns must produce a TTFR distribution visibly below the latency
// distribution — the quantity the streaming benchmark reports.
func TestRunTTFRBeatsLatency(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := Run(context.Background(), Config{
		Rate:     50,
		Duration: 200 * time.Millisecond,
		Queries:  loadQueries(t, 2),
		Metrics:  reg,
		Seed:     3,
	}, func(ctx context.Context, q *query.Query, first func()) error {
		first()
		select {
		case <-time.After(40 * time.Millisecond):
		case <-ctx.Done():
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatalf("nothing completed: %+v", rep)
	}
	if rep.TTFR.P50 >= rep.Latency.P50 {
		t.Fatalf("TTFR p50 %v not below latency p50 %v", rep.TTFR.P50, rep.Latency.P50)
	}
	// The shared registry carries the same distributions.
	if got := reg.Histogram(MLoadLatencySeconds).Count(); got != rep.Completed {
		t.Fatalf("registry latency count %d, report %d", got, rep.Completed)
	}
	if got := reg.Counter(MLoadOffered).Value(); got != rep.Offered {
		t.Fatalf("registry offered %d, report %d", got, rep.Offered)
	}
}

func TestRunCountsErrors(t *testing.T) {
	boom := errors.New("boom")
	rep, err := Run(context.Background(), Config{
		Rate:     200,
		Duration: 100 * time.Millisecond,
		Queries:  loadQueries(t, 2),
		Seed:     4,
	}, func(ctx context.Context, q *query.Query, first func()) error {
		return boom
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != rep.Offered || rep.Completed != 0 {
		t.Fatalf("all-failing runner reported %+v", rep)
	}
}

// TestRunHotMix: with HotFraction=1 every arrival replays the hot set.
func TestRunHotMix(t *testing.T) {
	qs := loadQueries(t, 10)
	seen := make(map[*query.Query]*atomic.Int64, len(qs))
	for _, q := range qs {
		seen[q] = &atomic.Int64{}
	}
	rep, err := Run(context.Background(), Config{
		Rate:        500,
		Duration:    100 * time.Millisecond,
		Queries:     qs,
		HotFraction: 1,
		HotCount:    2,
		Seed:        5,
	}, func(ctx context.Context, q *query.Query, first func()) error {
		seen[q].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("nothing completed")
	}
	for i, q := range qs {
		if i < 2 {
			continue
		}
		if n := seen[q].Load(); n != 0 {
			t.Fatalf("cold query %d ran %d times under HotFraction=1", i, n)
		}
	}
}

func TestRunValidatesConfig(t *testing.T) {
	ok := func(ctx context.Context, q *query.Query, first func()) error { return nil }
	qs := loadQueries(t, 1)
	cases := []Config{
		{Rate: 0, Duration: time.Millisecond, Queries: qs},
		{Rate: 1, Duration: 0, Queries: qs},
		{Rate: 1, Duration: time.Millisecond},
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg, ok); err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
	}
	if _, err := Run(context.Background(), Config{Rate: 1, Duration: time.Millisecond, Queries: qs}, nil); err == nil {
		t.Fatal("nil runner accepted")
	}
}

// TestRunCancel: cancelling the context stops the offering loop early.
func TestRunCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ctx, Config{
		Rate:     100,
		Duration: 10 * time.Second,
		Queries:  loadQueries(t, 1),
		Seed:     6,
	}, func(ctx context.Context, q *query.Query, first func()) error { return nil })
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not stop the offering loop")
	}
}
