package starts_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"starts"
)

// TestPublicAPIWalkthrough drives the whole paper workflow through the
// public facade only: build heterogeneous sources, serve them over HTTP,
// discover, harvest, query with the paper's Example 1 expressions, and
// merge.
func TestPublicAPIWalkthrough(t *testing.T) {
	// Two engines with different capabilities.
	vec, err := starts.NewVectorEngine()
	if err != nil {
		t.Fatal(err)
	}
	boolean, err := starts.NewBooleanEngine()
	if err != nil {
		t.Fatal(err)
	}

	db, err := starts.NewSource("db-papers", vec)
	if err != nil {
		t.Fatal(err)
	}
	web, err := starts.NewSource("web-pages", boolean)
	if err != nil {
		t.Fatal(err)
	}
	docs := []*starts.Document{
		{
			Linkage: "http://db/dood.ps",
			Title:   "A Comparison Between Deductive and Object-Oriented Database Systems",
			Authors: []string{"Jeffrey D. Ullman"},
			Body:    "Deductive databases and distributed evaluation of databases.",
			Date:    time.Date(1995, 6, 1, 0, 0, 0, 0, time.UTC),
		},
		{
			Linkage: "http://db/lagunita.ps",
			Title:   "Database Research: Achievements and Opportunities",
			Authors: []string{"Avi Silberschatz", "Jeff Ullman"},
			Body:    "Distributed databases and distributed systems research databases.",
			Date:    time.Date(1996, 9, 15, 0, 0, 0, 0, time.UTC),
		},
	}
	for _, d := range docs {
		if err := db.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := web.Add(&starts.Document{
		Linkage: "http://web/page.html", Title: "Databases on the web",
		Body: "A page about distributed databases.",
		Date: time.Date(1996, 2, 2, 0, 0, 0, 0, time.UTC),
	}); err != nil {
		t.Fatal(err)
	}

	// Serve both behind one resource over HTTP.
	res := starts.NewResource()
	if err := res.Add(db); err != nil {
		t.Fatal(err)
	}
	if err := res.Add(web); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(nil)
	defer ts.Close()
	ts.Config.Handler = starts.NewServer(res, ts.URL)

	// Metasearch over the wire.
	ctx := context.Background()
	c := starts.NewClient(ts.Client())
	conns, err := c.Discover(ctx, ts.URL+"/resource")
	if err != nil {
		t.Fatal(err)
	}
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{
		Selector: starts.SelectVSum,
		Merger:   starts.MergeTermStats,
	})
	for _, conn := range conns {
		ms.Add(conn)
	}
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}

	// The paper's Example 1 query.
	q := starts.NewQuery()
	if q.Filter, err = starts.ParseFilter(`((author "Ullman") and (title "databases"))`); err != nil {
		t.Fatal(err)
	}
	if q.Ranking, err = starts.ParseRanking(`list((body-of-text "distributed") (body-of-text "databases"))`); err != nil {
		t.Fatal(err)
	}
	answer, err := ms.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(answer.Documents) != 2 {
		t.Fatalf("documents = %d, want the two Ullman papers", len(answer.Documents))
	}
	if answer.Documents[0].Linkage() != "http://db/lagunita.ps" {
		t.Errorf("top doc = %s", answer.Documents[0].Linkage())
	}
	for _, d := range answer.Documents {
		if d.Linkage() == "" || d.Title() == "" {
			t.Errorf("answer fields incomplete: %v", d.Fields)
		}
		if len(d.TermStats) == 0 {
			t.Errorf("TermStats missing for %s", d.Linkage())
		}
	}
	// The Boolean source was contacted and reports a lossy translation.
	if oc := answer.PerSource["web-pages"]; oc != nil {
		if oc.Report == nil || oc.Report.Clean() {
			t.Error("boolean source should report lossy translation")
		}
	}
	if starts.Version != "STARTS 1.0" {
		t.Errorf("Version = %q", starts.Version)
	}
}

// TestFacadeMergersAndSelectors sanity-checks the exported strategy values.
func TestFacadeMergersAndSelectors(t *testing.T) {
	for _, sel := range []starts.Selector{starts.SelectVSum, starts.SelectVMax, starts.SelectBGloss} {
		if sel.Name() == "" {
			t.Error("selector with empty name")
		}
	}
	names := map[string]bool{}
	for _, m := range []starts.MergeStrategy{
		starts.MergeRawScore, starts.MergeScaled, starts.MergeRoundRobin, starts.MergeTermStats,
	} {
		if m.Name() == "" || names[m.Name()] {
			t.Errorf("merge strategy name invalid or duplicated: %q", m.Name())
		}
		names[m.Name()] = true
	}
}

// TestFacadeQueryHelpers covers the parse helpers and defaults.
func TestFacadeQueryHelpers(t *testing.T) {
	q := starts.NewQuery()
	if !q.DropStopWords || q.EffectiveMaxResults() <= 0 {
		t.Errorf("defaults wrong: %+v", q)
	}
	if _, err := starts.ParseFilter(`(title "x")`); err != nil {
		t.Errorf("ParseFilter: %v", err)
	}
	if _, err := starts.ParseRanking(`list("x")`); err != nil {
		t.Errorf("ParseRanking: %v", err)
	}
	if _, err := starts.ParseFilter(`list("x")`); err == nil {
		t.Error("filter accepted list")
	}
	e, err := starts.NewEngine(starts.EngineConfig{})
	if err == nil || e != nil {
		t.Error("empty engine config accepted")
	}
	if _, err := starts.NewSource("bad id", nil); err == nil {
		t.Error("bad source args accepted")
	}
}

// TestFacadeSOIFInterop checks that facade types expose the SOIF layer
// (marshal a query, read it back).
func TestFacadeSOIFInterop(t *testing.T) {
	q := starts.NewQuery()
	var err error
	if q.Ranking, err = starts.ParseRanking(`list((body-of-text "databases"))`); err != nil {
		t.Fatal(err)
	}
	data, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "@SQuery{") {
		t.Errorf("not SOIF:\n%s", data)
	}
}
