// Benchmarks for the experiment index of DESIGN.md: protocol throughput
// (experiment X6) and one bench per experiment mechanism. Run with
//
//	go test -bench=. -benchmem .
package starts_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"starts"
	"starts/internal/corpus"
	"starts/internal/engine"
	"starts/internal/gloss"
	"starts/internal/merge"
	"starts/internal/translate"
)

// benchFleet builds a seeded universe of live sources once per benchmark.
func benchFleet(b *testing.B, numSources, docs int, scorers ...engine.Scorer) []*starts.Source {
	b.Helper()
	if len(scorers) == 0 {
		scorers = []engine.Scorer{engine.TFIDF{}}
	}
	g := corpus.Generate(corpus.Config{Seed: 5, NumSources: numSources, DocsPerSource: docs})
	out := make([]*starts.Source, 0, numSources)
	for i, spec := range g.Sources {
		cfg := engine.NewVectorConfig()
		cfg.Scorer = scorers[i%len(scorers)]
		eng, err := starts.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s, err := starts.NewSource(spec.ID, eng)
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range spec.Docs {
			if err := s.Add(d); err != nil {
				b.Fatal(err)
			}
		}
		out = append(out, s)
	}
	return out
}

func benchQuery(b *testing.B, ranking string) *starts.Query {
	b.Helper()
	q := starts.NewQuery()
	r, err := starts.ParseRanking(ranking)
	if err != nil {
		b.Fatal(err)
	}
	q.Ranking = r
	return q
}

// BenchmarkEngineSearch measures single-source query evaluation (the
// substrate cost under every experiment).
func BenchmarkEngineSearch(b *testing.B) {
	srcs := benchFleet(b, 1, 1000)
	q := benchQuery(b, `list((body-of-text "database") (body-of-text "query"))`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srcs[0].Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexing measures document ingestion.
func BenchmarkIndexing(b *testing.B) {
	g := corpus.Generate(corpus.Config{Seed: 6, NumSources: 1, DocsPerSource: 2000})
	docs := g.Sources[0].Docs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := starts.NewVectorEngine()
		if err != nil {
			b.Fatal(err)
		}
		d := docs[i%len(docs)]
		cp := *d
		cp.Linkage = fmt.Sprintf("%s-%d", d.Linkage, i)
		if err := eng.Add(&cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummaryBuild is experiment X1's mechanism: generating a content
// summary from a 1000-document index.
func BenchmarkSummaryBuild(b *testing.B) {
	srcs := benchFleet(b, 1, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if srcs[0].ContentSummary().NumDocs != 1000 {
			b.Fatal("bad summary")
		}
	}
}

// BenchmarkGlossSelect is experiment X2's mechanism: ranking 10 sources
// from their summaries.
func BenchmarkGlossSelect(b *testing.B) {
	srcs := benchFleet(b, 10, 200)
	infos := make([]gloss.SourceInfo, len(srcs))
	for i, s := range srcs {
		infos[i] = gloss.SourceInfo{ID: s.ID(), Summary: s.ContentSummary()}
	}
	q := benchQuery(b, `list((body-of-text "database") (body-of-text "patient"))`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := (gloss.VSum{}).Rank(q, infos); len(got) != 10 {
			b.Fatal("bad rank")
		}
	}
}

// BenchmarkMergeStrategies is experiment X3's mechanism: fusing results
// from three incompatible rankers.
func BenchmarkMergeStrategies(b *testing.B) {
	srcs := benchFleet(b, 3, 300, engine.TFIDF{}, engine.TopK{}, engine.RawTF{})
	q := benchQuery(b, `list((body-of-text "database") (body-of-text "query"))`)
	q.MaxResults = 30
	var inputs []merge.SourceResult
	for _, s := range srcs {
		r, err := s.Search(q)
		if err != nil {
			b.Fatal(err)
		}
		inputs = append(inputs, merge.SourceResult{
			SourceID: s.ID(), Meta: s.Metadata(), Summary: s.ContentSummary(), Results: r,
		})
	}
	for _, strat := range []merge.Strategy{merge.RawScore{}, merge.Scaled{}, merge.TermStats{}} {
		b.Run(strat.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := strat.Merge(q, inputs); len(got) == 0 {
					b.Fatal("empty merge")
				}
			}
		})
	}
}

// BenchmarkTranslate is experiment X4's mechanism: rewriting a query from
// source metadata.
func BenchmarkTranslate(b *testing.B) {
	srcs := benchFleet(b, 1, 50)
	md := srcs[0].Metadata()
	q := starts.NewQuery()
	f, err := starts.ParseFilter(`((author "Ada") and ((title stem "database") or (body-of-text "query")))`)
	if err != nil {
		b.Fatal(err)
	}
	q.Filter = f
	q.Ranking, _ = starts.ParseRanking(`list((body-of-text "database"))`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sent, _ := translate.ForSource(q, md); sent.Filter == nil {
			b.Fatal("translation lost the filter")
		}
	}
}

// BenchmarkResourceQuery is experiment E4's mechanism: a same-resource
// multi-source query with duplicate elimination.
func BenchmarkResourceQuery(b *testing.B) {
	srcs := benchFleet(b, 3, 200)
	res := starts.NewResource()
	for _, s := range srcs {
		if err := res.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	q := benchQuery(b, `list((body-of-text "database"))`)
	q.Sources = []string{srcs[1].ID(), srcs[2].ID()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Search(srcs[0].ID(), q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetasearchLocal is X6: the full pipeline (selection,
// translation, fan-out, merging) over in-process sources.
func BenchmarkMetasearchLocal(b *testing.B) {
	srcs := benchFleet(b, 5, 200, engine.TFIDF{}, engine.TopK{})
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{MaxSources: 3})
	for _, s := range srcs {
		ms.Add(starts.NewLocalConn(s, nil))
	}
	ctx := context.Background()
	if err := ms.Harvest(ctx); err != nil {
		b.Fatal(err)
	}
	q := benchQuery(b, `list((body-of-text "database") (body-of-text "patient"))`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ms.Search(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchCold is the hot-query experiment's baseline: every
// Search runs the full pipeline (selection, translation, fan-out,
// merging), no cache configured. Compare with BenchmarkSearchCached.
func BenchmarkSearchCold(b *testing.B) {
	srcs := benchFleet(b, 5, 200, engine.TFIDF{}, engine.TopK{})
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{MaxSources: 3})
	for _, s := range srcs {
		ms.Add(starts.NewLocalConn(s, nil))
	}
	ctx := context.Background()
	if err := ms.Harvest(ctx); err != nil {
		b.Fatal(err)
	}
	q := benchQuery(b, `list((body-of-text "database") (body-of-text "patient"))`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ms.Search(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchCached is the same workload with the query cache in
// front: after one warming miss every iteration is a fingerprint
// computation plus a fresh hit, the repeated-query fast path.
func BenchmarkSearchCached(b *testing.B) {
	srcs := benchFleet(b, 5, 200, engine.TFIDF{}, engine.TopK{})
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{
		MaxSources: 3,
		Cache:      starts.NewQueryCache(starts.QueryCacheConfig{TTL: time.Hour}),
	})
	for _, s := range srcs {
		ms.Add(starts.NewLocalConn(s, nil))
	}
	ctx := context.Background()
	if err := ms.Harvest(ctx); err != nil {
		b.Fatal(err)
	}
	q := benchQuery(b, `list((body-of-text "database") (body-of-text "patient"))`)
	if _, err := ms.Search(ctx, q); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := ms.Search(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(ans.Documents) == 0 {
			b.Fatal("empty cached answer")
		}
	}
}

// BenchmarkSearchWarmed is X10: a restarted metasearcher that replayed
// the previous run's workload serves its first (and every) repeated
// query from cache. Each iteration measures the post-restart serve; the
// one-time replay cost is reported as warm-ns/op.
func BenchmarkSearchWarmed(b *testing.B) {
	srcs := benchFleet(b, 5, 200, engine.TFIDF{}, engine.TopK{})
	newMS := func() *starts.Metasearcher {
		ms := starts.NewMetasearcher(starts.MetasearcherOptions{
			MaxSources: 3,
			Cache:      starts.NewQueryCache(starts.QueryCacheConfig{TTL: time.Hour}),
		})
		for _, s := range srcs {
			ms.Add(starts.NewLocalConn(s, nil))
		}
		return ms
	}
	ctx := context.Background()
	q := benchQuery(b, `list((body-of-text "database") (body-of-text "patient"))`)

	// First life: serve the workload once, record it.
	prev := newMS()
	if err := prev.Harvest(ctx); err != nil {
		b.Fatal(err)
	}
	if _, err := prev.Search(ctx, q); err != nil {
		b.Fatal(err)
	}
	workload := prev.Workload()

	// Restart: fresh metasearcher and cache, warmed from the workload.
	ms := newMS()
	if err := ms.Harvest(ctx); err != nil {
		b.Fatal(err)
	}
	warmStart := time.Now()
	stats, err := ms.Warm(ctx, workload, 0)
	if err != nil {
		b.Fatal(err)
	}
	warmElapsed := time.Since(warmStart)
	if stats.Replayed != len(workload) {
		b.Fatalf("warm stats = %+v, want %d replayed", stats, len(workload))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := ms.Search(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(ans.Documents) == 0 {
			b.Fatal("empty warmed answer")
		}
	}
	// ResetTimer clears custom metrics, so the one-time replay cost is
	// reported after the loop.
	b.ReportMetric(float64(warmElapsed.Nanoseconds()), "warm-replay-ns")
}

// BenchmarkFanoutDispatched is X11: concurrent clients issuing the same
// query with the cache bypassed, so every deduplicated wire call is the
// dispatch layer's doing — identical in-flight sub-queries coalesce into
// one batch per source while per-source concurrency stays at its bound
// (the starts_dispatch_inflight gauge; pinned by the core tests). The
// batched fraction of all dispatch submissions is reported as
// batched-ratio.
//
// "local" runs in-process sources, comparable to the sequential
// BenchmarkSearchCold baseline; on few-core machines its wire calls are
// pure CPU and finish before a second search can join, so its ratio can
// round to zero. "wire-latency" adds 2ms of simulated per-call network
// latency — the regime the paper's metasearcher actually operates in —
// where concurrent searches pile onto in-flight calls and per-search
// cost drops well below the per-call latency floor.
func BenchmarkFanoutDispatched(b *testing.B) {
	const wireLatency = 2 * time.Millisecond
	bench := func(b *testing.B, mw []starts.ConnMiddleware) {
		srcs := benchFleet(b, 5, 200, engine.TFIDF{}, engine.TopK{})
		ms := starts.NewMetasearcher(starts.MetasearcherOptions{
			MaxSources:        3,
			SourceConcurrency: 4,
		})
		for _, s := range srcs {
			ms.Add(starts.ChainConn(starts.NewLocalConn(s, nil), mw...))
		}
		ctx := context.Background()
		if err := ms.Harvest(ctx); err != nil {
			b.Fatal(err)
		}
		q := benchQuery(b, `list((body-of-text "database") (body-of-text "patient"))`)
		b.ReportAllocs()
		b.SetParallelism(4)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				ans, err := ms.Search(ctx, q, starts.WithNoCache())
				if err != nil {
					b.Fatal(err)
				}
				if len(ans.Documents) == 0 {
					b.Fatal("empty answer")
				}
			}
		})
		b.StopTimer()
		var submitted, batched int64
		for _, st := range ms.DispatchStats() {
			submitted += st.Submitted
			batched += st.Batched
		}
		if submitted > 0 {
			b.ReportMetric(float64(batched)/float64(submitted), "batched-ratio")
		}
	}
	b.Run("local", func(b *testing.B) { bench(b, nil) })
	b.Run("wire-latency", func(b *testing.B) {
		bench(b, []starts.ConnMiddleware{
			starts.FaultyMiddleware(starts.FaultConfig{Seed: 1, Latency: wireLatency}),
		})
	})
}

// BenchmarkFanoutMultiplexed is X12: concurrent clients issuing DISTINCT
// queries with the cache bypassed. Key-based coalescing (X11) cannot help
// here — no two in-flight sub-queries are identical — so every saved
// round trip is the multiplexed transport's doing: a worker drains the
// source queue (up to MaxBatchWire) and issues ONE wire call for the
// whole drain via the BatchConn seam. The fraction of queue items that
// shared a wire call is reported as wire-batched-ratio
// (1 - WireCalls/WireItems).
//
// "local" runs in-process sources: on a few-core box drains stay shallow
// because wire calls are pure CPU, so the ratio is modest. "wire-latency"
// adds 2ms of simulated per-wire-call network latency — the regime the
// paper's metasearcher operates in — where queues pile up behind the RTT
// and drains run deep (MaxBatchWire 32 caps them), amortizing one round
// trip across ~18 distinct sub-queries.
func BenchmarkFanoutMultiplexed(b *testing.B) {
	const wireLatency = 2 * time.Millisecond
	bench := func(b *testing.B, mw []starts.ConnMiddleware) {
		srcs := benchFleet(b, 5, 100, engine.TFIDF{}, engine.TopK{})
		ms := starts.NewMetasearcher(starts.MetasearcherOptions{
			MaxSources:        3,
			SourceConcurrency: 1,
			QueueDepth:        128,
			MaxBatchWire:      32,
		})
		for _, s := range srcs {
			conn, ok := starts.ChainBatchConn(starts.NewLocalConn(s, nil), mw...)
			if !ok {
				b.Fatal("middleware chain dropped the batch capability")
			}
			ms.Add(conn)
		}
		ctx := context.Background()
		if err := ms.Harvest(ctx); err != nil {
			b.Fatal(err)
		}
		var seq atomic.Int64
		b.ReportAllocs()
		b.SetParallelism(64)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				// A unique never-matching term makes every query distinct
				// (distinct fingerprint, no key coalescing) without
				// changing which documents match.
				n := seq.Add(1)
				q := benchQuery(b, fmt.Sprintf(
					`list((body-of-text "database") (body-of-text "patient") (body-of-text "u%d"))`, n))
				ans, err := ms.Search(ctx, q, starts.WithNoCache())
				if err != nil {
					b.Fatal(err)
				}
				if len(ans.Documents) == 0 {
					b.Fatal("empty answer")
				}
			}
		})
		b.StopTimer()
		var calls, items int64
		for _, st := range ms.DispatchStats() {
			calls += st.WireCalls
			items += st.WireItems
		}
		if items > 0 {
			b.ReportMetric(1-float64(calls)/float64(items), "wire-batched-ratio")
		}
	}
	b.Run("local", func(b *testing.B) { bench(b, nil) })
	b.Run("wire-latency", func(b *testing.B) {
		bench(b, []starts.ConnMiddleware{
			starts.FaultyMiddleware(starts.FaultConfig{Seed: 1, Latency: wireLatency}),
		})
	})
}

// BenchmarkPeerCluster is X13: the distributed cache tier at the
// BENCH_5/BENCH_7 2ms-RTT yardstick. Three regimes of the same query
// workload (5 sources, top-3 selected, 2ms simulated per-wire-call
// source latency):
//
//   - cold: every search runs the full pipeline against the 2ms
//     sources — the floor the cache tier must beat.
//   - local-hit: a per-source conn cache on this node's own memory —
//     the best case, and the overhead bar for the peer wire.
//   - remote-hit: the conn cache's store is a pure client of a peer
//     node holding the whole ring share, so EVERY lookup crosses the
//     peer wire (real loopback HTTP). One warming search fills the
//     peer; every measured search serves all its per-source results as
//     remote hits, no recompute. remote-hit-ratio reports hits over
//     hits+misses on the peer transport.
func BenchmarkPeerCluster(b *testing.B) {
	const wireLatency = 2 * time.Millisecond
	newNode := func(b *testing.B, mw ...starts.ConnMiddleware) *starts.Metasearcher {
		b.Helper()
		srcs := benchFleet(b, 5, 200, engine.TFIDF{}, engine.TopK{})
		ms := starts.NewMetasearcher(starts.MetasearcherOptions{MaxSources: 3})
		for _, s := range srcs {
			ms.Add(starts.ChainConn(starts.NewLocalConn(s, nil), mw...))
		}
		if err := ms.Harvest(context.Background()); err != nil {
			b.Fatal(err)
		}
		return ms
	}
	faultMW := starts.FaultyMiddleware(starts.FaultConfig{Seed: 1, Latency: wireLatency})
	q := `list((body-of-text "database") (body-of-text "patient"))`
	// A bounded answer, as real clients ask for: the per-source result
	// payloads (and so the cached entries crossing the peer wire) stay
	// proportional to what the user sees, not to the corpus.
	peerQuery := func(b *testing.B) *starts.Query {
		b.Helper()
		query := benchQuery(b, q)
		query.MaxResults = 10
		return query
	}
	run := func(b *testing.B, ms *starts.Metasearcher, opts ...starts.SearchOption) {
		b.Helper()
		ctx := context.Background()
		query := peerQuery(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ans, err := ms.Search(ctx, query, opts...)
			if err != nil {
				b.Fatal(err)
			}
			if len(ans.Documents) == 0 {
				b.Fatal("empty answer")
			}
		}
	}

	b.Run("cold", func(b *testing.B) {
		ms := newNode(b, faultMW)
		defer ms.Close()
		run(b, ms, starts.WithNoCache())
	})

	b.Run("local-hit", func(b *testing.B) {
		cache := starts.NewQueryCache(starts.QueryCacheConfig{TTL: time.Hour})
		ms := newNode(b, faultMW, starts.CacheMiddleware(cache))
		defer ms.Close()
		if _, err := ms.Search(context.Background(), peerQuery(b)); err != nil {
			b.Fatal(err)
		}
		run(b, ms)
	})

	b.Run("remote-hit", func(b *testing.B) {
		// The peer node: a store owning the whole ring, served over real
		// loopback HTTP.
		peerSrv := httptest.NewServer(nil)
		defer peerSrv.Close()
		owner := starts.NewPeerStore(starts.PeerStoreConfig{
			Self:  peerSrv.URL,
			Codec: starts.PeerResultsCodec,
		})
		peerSrv.Config.Handler = starts.NewPeerHandler(owner)

		// This node: a pure ring client — no Self, so every per-source
		// cache entry lives on (and is fetched from) the peer.
		clientStore := starts.NewPeerStore(starts.PeerStoreConfig{
			Peers:   []string{peerSrv.URL},
			Codec:   starts.PeerResultsCodec,
			Timeout: time.Second,
		})
		cache := starts.NewQueryCache(starts.QueryCacheConfig{Store: clientStore, TTL: time.Hour})
		ms := newNode(b, faultMW, starts.CacheMiddleware(cache))
		defer ms.Close()
		if _, err := ms.Search(context.Background(), peerQuery(b)); err != nil {
			b.Fatal(err)
		}
		run(b, ms)
		b.StopTimer()
		var hits, misses int64
		for _, st := range clientStore.Snapshot() {
			hits += st.RemoteHits
			misses += st.RemoteMisses
		}
		if hits+misses > 0 {
			b.ReportMetric(float64(hits)/float64(hits+misses), "remote-hit-ratio")
		}
	})
}

// BenchmarkEndToEndHTTP is X6: one query round trip over the HTTP
// transport, including SOIF encoding on both sides.
func BenchmarkEndToEndHTTP(b *testing.B) {
	srcs := benchFleet(b, 1, 500)
	res := starts.NewResource()
	if err := res.Add(srcs[0]); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(nil)
	defer ts.Close()
	ts.Config.Handler = starts.NewServer(res, ts.URL)
	c := starts.NewClient(ts.Client())
	q := benchQuery(b, `list((body-of-text "database"))`)
	q.MaxResults = 10
	ctx := context.Background()
	url := ts.URL + "/sources/" + srcs[0].ID() + "/query"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(ctx, url, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHarvestHTTP is X6: harvesting metadata plus summary over HTTP.
func BenchmarkHarvestHTTP(b *testing.B) {
	srcs := benchFleet(b, 2, 300)
	res := starts.NewResource()
	for _, s := range srcs {
		if err := res.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	ts := httptest.NewServer(nil)
	defer ts.Close()
	ts.Config.Handler = starts.NewServer(res, ts.URL)
	ctx := context.Background()
	c := starts.NewClient(ts.Client())
	conns, err := c.Discover(ctx, ts.URL+"/resource")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn := conns[i%len(conns)]
		if _, err := conn.Metadata(ctx); err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Summary(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampleResults is X8's mechanism: producing calibration data.
func BenchmarkSampleResults(b *testing.B) {
	srcs := benchFleet(b, 1, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srcs[0].SampleResults(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalibrationFit is X8's mechanism: fitting the score map.
func BenchmarkCalibrationFit(b *testing.B) {
	srcs := benchFleet(b, 2, 50, engine.TFIDF{}, engine.TopK{})
	ref, err := srcs[0].SampleResults()
	if err != nil {
		b.Fatal(err)
	}
	smp, err := srcs[1].SampleResults()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := merge.Fit(smp, ref); err != nil {
			b.Fatal(err)
		}
	}
}
